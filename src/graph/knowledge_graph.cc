#include "graph/knowledge_graph.h"

#include <algorithm>

#include "core/check.h"

namespace kgrec {

EntityId KnowledgeGraph::AddEntity(const std::string& name) {
  KGREC_CHECK(!finalized_);
  auto it = entity_index_.find(name);
  if (it != entity_index_.end()) return it->second;
  const EntityId id = static_cast<EntityId>(entity_names_.size());
  entity_names_.push_back(name);
  entity_index_.emplace(name, id);
  return id;
}

RelationId KnowledgeGraph::AddRelation(const std::string& name) {
  KGREC_CHECK(!finalized_);
  auto it = relation_index_.find(name);
  if (it != relation_index_.end()) return it->second;
  const RelationId id = static_cast<RelationId>(relation_names_.size());
  relation_names_.push_back(name);
  relation_index_.emplace(name, id);
  return id;
}

Status KnowledgeGraph::AddTriple(EntityId head, RelationId relation,
                                 EntityId tail) {
  if (finalized_) {
    return Status::FailedPrecondition("graph is finalized");
  }
  if (head < 0 || static_cast<size_t>(head) >= num_entities()) {
    return Status::InvalidArgument("head entity out of range");
  }
  if (tail < 0 || static_cast<size_t>(tail) >= num_entities()) {
    return Status::InvalidArgument("tail entity out of range");
  }
  if (relation < 0 || static_cast<size_t>(relation) >= num_relations()) {
    return Status::InvalidArgument("relation out of range");
  }
  triples_.push_back({head, relation, tail});
  return Status::OK();
}

void KnowledgeGraph::AddInverseRelations() {
  KGREC_CHECK(!finalized_);
  const size_t original_relations = relation_names_.size();
  std::vector<RelationId> inverse(original_relations);
  for (size_t r = 0; r < original_relations; ++r) {
    inverse[r] = AddRelation(relation_names_[r] + "^-1");
  }
  const size_t original_triples = triples_.size();
  triples_.reserve(original_triples * 2);
  for (size_t i = 0; i < original_triples; ++i) {
    const Triple& t = triples_[i];
    triples_.push_back({t.tail, inverse[t.relation], t.head});
  }
}

void KnowledgeGraph::Finalize() {
  if (finalized_) return;
  finalized_ = true;
  const size_t n = num_entities();
  adj_ptr_.assign(n + 1, 0);
  for (const Triple& t : triples_) ++adj_ptr_[t.head + 1];
  for (size_t i = 0; i < n; ++i) adj_ptr_[i + 1] += adj_ptr_[i];
  adj_edges_.resize(triples_.size());
  std::vector<size_t> cursor(adj_ptr_.begin(), adj_ptr_.end() - 1);
  for (const Triple& t : triples_) {
    adj_edges_[cursor[t.head]++] = {t.relation, t.tail};
  }
  // Deterministic edge order within each entity.
  for (size_t e = 0; e < n; ++e) {
    std::sort(adj_edges_.begin() + adj_ptr_[e],
              adj_edges_.begin() + adj_ptr_[e + 1],
              [](const Edge& a, const Edge& b) {
                if (a.relation != b.relation) return a.relation < b.relation;
                return a.target < b.target;
              });
  }
}

Status KnowledgeGraph::FindEntity(const std::string& name,
                                  EntityId* out) const {
  auto it = entity_index_.find(name);
  if (it == entity_index_.end()) {
    return Status::NotFound("entity: " + name);
  }
  *out = it->second;
  return Status::OK();
}

Status KnowledgeGraph::FindRelation(const std::string& name,
                                    RelationId* out) const {
  auto it = relation_index_.find(name);
  if (it == relation_index_.end()) {
    return Status::NotFound("relation: " + name);
  }
  *out = it->second;
  return Status::OK();
}

size_t KnowledgeGraph::OutDegree(EntityId entity) const {
  KGREC_CHECK(finalized_);
  KGREC_CHECK(entity >= 0 && static_cast<size_t>(entity) < num_entities());
  return adj_ptr_[entity + 1] - adj_ptr_[entity];
}

const Edge* KnowledgeGraph::OutEdges(EntityId entity) const {
  KGREC_CHECK(finalized_);
  return adj_edges_.data() + adj_ptr_[entity];
}

std::vector<Edge> KnowledgeGraph::SampleNeighbors(EntityId entity,
                                                  size_t count,
                                                  Rng& rng) const {
  std::vector<Edge> out;
  SampleNeighbors(entity, count, rng, &out);
  return out;
}

void KnowledgeGraph::SampleNeighbors(EntityId entity, size_t count, Rng& rng,
                                     std::vector<Edge>* out) const {
  out->clear();
  const size_t degree = OutDegree(entity);
  if (degree == 0 || count == 0) return;
  const Edge* edges = OutEdges(entity);
  out->reserve(count);
  if (degree <= count) {
    // Take all, then pad with uniform resamples to reach the fixed size.
    out->assign(edges, edges + degree);
    while (out->size() < count) {
      out->push_back(edges[rng.UniformInt(degree)]);
    }
  } else {
    for (size_t i : rng.SampleWithoutReplacement(degree, count)) {
      out->push_back(edges[i]);
    }
  }
}

bool KnowledgeGraph::HasTriple(EntityId head, RelationId relation,
                               EntityId tail) const {
  // Finalize() sorts each entity's edges by (relation, target), so
  // membership is a binary search instead of a degree-linear scan.
  const Edge* begin = OutEdges(head);
  const Edge* end = begin + OutDegree(head);
  return std::binary_search(begin, end, Edge{relation, tail},
                            [](const Edge& a, const Edge& b) {
                              if (a.relation != b.relation) {
                                return a.relation < b.relation;
                              }
                              return a.target < b.target;
                            });
}

}  // namespace kgrec
