#include "graph/pathsim.h"

namespace kgrec {

CsrMatrix PathSim(const CsrMatrix& commuting) {
  const size_t n = commuting.rows();
  std::vector<float> diag(n, 0.0f);
  for (size_t r = 0; r < n; ++r) {
    diag[r] = commuting.At(r, r);
  }
  std::vector<std::tuple<int32_t, int32_t, float>> triplets;
  for (size_t r = 0; r < n; ++r) {
    const size_t nnz = commuting.RowNnz(r);
    const int32_t* cols = commuting.RowCols(r);
    const float* vals = commuting.RowVals(r);
    for (size_t i = 0; i < nnz; ++i) {
      const int32_t c = cols[i];
      const float denom = diag[r] + diag[c];
      if (denom > 0.0f && vals[i] != 0.0f) {
        triplets.emplace_back(static_cast<int32_t>(r), c,
                              2.0f * vals[i] / denom);
      }
    }
  }
  return CsrMatrix::FromTriplets(n, commuting.cols(), triplets);
}

CsrMatrix PathSim(const Hin& hin, const MetaPath& path) {
  return PathSim(hin.CommutingMatrix(path));
}

}  // namespace kgrec
