#include "graph/hin.h"

#include "core/check.h"

namespace kgrec {

Hin::Hin(const KnowledgeGraph* graph, std::vector<int32_t> entity_types,
         std::vector<std::string> type_names)
    : graph_(graph),
      entity_types_(std::move(entity_types)),
      type_names_(std::move(type_names)) {
  KGREC_CHECK(graph_->finalized());
  KGREC_CHECK_EQ(entity_types_.size(), graph_->num_entities());
  by_type_.resize(type_names_.size());
  for (size_t e = 0; e < entity_types_.size(); ++e) {
    const int32_t t = entity_types_[e];
    KGREC_CHECK(t >= 0 && static_cast<size_t>(t) < type_names_.size());
    by_type_[t].push_back(static_cast<EntityId>(e));
  }
}

const std::vector<EntityId>& Hin::EntitiesOfType(int32_t type) const {
  KGREC_CHECK(type >= 0 && static_cast<size_t>(type) < by_type_.size());
  return by_type_[type];
}

CsrMatrix Hin::RelationMatrix(RelationId relation) const {
  const size_t n = graph_->num_entities();
  std::vector<std::tuple<int32_t, int32_t, float>> triplets;
  for (const Triple& t : graph_->triples()) {
    if (t.relation == relation) triplets.emplace_back(t.head, t.tail, 1.0f);
  }
  return CsrMatrix::FromTriplets(n, n, triplets);
}

CsrMatrix Hin::CommutingMatrix(const MetaPath& path) const {
  KGREC_CHECK(!path.relations.empty());
  CsrMatrix result = RelationMatrix(path.relations[0]);
  for (size_t i = 1; i < path.relations.size(); ++i) {
    result = result.Multiply(RelationMatrix(path.relations[i]));
  }
  return result;
}

CsrMatrix Hin::CommutingMatrix(const MetaGraph& graph) const {
  KGREC_CHECK(!graph.paths.empty());
  CsrMatrix total = CommutingMatrix(graph.paths[0]);
  const size_t n = total.rows();
  for (size_t p = 1; p < graph.paths.size(); ++p) {
    CsrMatrix next = CommutingMatrix(graph.paths[p]);
    std::vector<std::tuple<int32_t, int32_t, float>> triplets;
    for (size_t r = 0; r < n; ++r) {
      for (size_t i = 0; i < total.RowNnz(r); ++i) {
        triplets.emplace_back(static_cast<int32_t>(r), total.RowCols(r)[i],
                              total.RowVals(r)[i]);
      }
      for (size_t i = 0; i < next.RowNnz(r); ++i) {
        triplets.emplace_back(static_cast<int32_t>(r), next.RowCols(r)[i],
                              next.RowVals(r)[i]);
      }
    }
    total = CsrMatrix::FromTriplets(n, n, triplets);
  }
  return total;
}

}  // namespace kgrec
