#include "graph/aggregators.h"

#include "core/check.h"
#include "nn/ops.h"

namespace kgrec {

AggregatorKind AggregatorKindFromName(const std::string& name) {
  if (name == "sum") return AggregatorKind::kSum;
  if (name == "concat") return AggregatorKind::kConcat;
  if (name == "neighbor") return AggregatorKind::kNeighbor;
  if (name == "bi-interaction") return AggregatorKind::kBiInteraction;
  KGREC_CHECK(false);
  return AggregatorKind::kSum;
}

std::string AggregatorKindName(AggregatorKind kind) {
  switch (kind) {
    case AggregatorKind::kSum:
      return "sum";
    case AggregatorKind::kConcat:
      return "concat";
    case AggregatorKind::kNeighbor:
      return "neighbor";
    case AggregatorKind::kBiInteraction:
      return "bi-interaction";
  }
  return "unknown";
}

Aggregator::Aggregator(AggregatorKind kind, size_t dim, Rng& rng)
    : kind_(kind) {
  const size_t in_dim = kind == AggregatorKind::kConcat ? 2 * dim : dim;
  main_ = nn::Linear(in_dim, dim, rng);
  if (kind == AggregatorKind::kBiInteraction) {
    interaction_ = nn::Linear(dim, dim, rng);
  }
}

nn::Tensor Aggregator::Forward(const nn::Tensor& self,
                               const nn::Tensor& neighbor,
                               bool final_layer) const {
  auto phi = [final_layer](const nn::Tensor& x) {
    return final_layer ? nn::Tanh(x) : nn::Relu(x);
  };
  switch (kind_) {
    case AggregatorKind::kSum:
      return phi(main_.Forward(nn::Add(self, neighbor)));
    case AggregatorKind::kConcat:
      return phi(main_.Forward(nn::Concat(self, neighbor)));
    case AggregatorKind::kNeighbor:
      return phi(main_.Forward(neighbor));
    case AggregatorKind::kBiInteraction: {
      nn::Tensor sum_part = phi(main_.Forward(nn::Add(self, neighbor)));
      nn::Tensor prod_part =
          phi(interaction_.Forward(nn::Mul(self, neighbor)));
      return nn::Add(sum_part, prod_part);
    }
  }
  KGREC_CHECK(false);
  return self;
}

std::vector<nn::Tensor> Aggregator::Params() const {
  std::vector<nn::Tensor> out = main_.Params();
  if (kind_ == AggregatorKind::kBiInteraction) {
    for (const auto& p : interaction_.Params()) out.push_back(p);
  }
  return out;
}

}  // namespace kgrec
