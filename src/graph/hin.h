#ifndef KGREC_GRAPH_HIN_H_
#define KGREC_GRAPH_HIN_H_

#include <string>
#include <vector>

#include "graph/knowledge_graph.h"
#include "math/sparse.h"

namespace kgrec {

/// A meta-path A_0 --R_1--> A_1 --R_2--> ... --R_k--> A_k (survey
/// Section 3): a composite relation expressed as a relation-id sequence.
struct MetaPath {
  std::string name;
  std::vector<RelationId> relations;

  size_t length() const { return relations.size(); }
};

/// A meta-graph: a combination of meta-paths between the same endpoint
/// types (survey Section 3, used by FMG). Its commuting matrix is the sum
/// of the member meta-paths' commuting matrices, which rewards entity
/// pairs connected through several parallel relation sequences at once.
struct MetaGraph {
  std::string name;
  std::vector<MetaPath> paths;
};

/// A Heterogeneous Information Network view over a KnowledgeGraph: every
/// entity carries a type from a small type vocabulary (user, item, genre,
/// ...). The KG is an instance of a HIN (survey Section 3).
class Hin {
 public:
  /// Wraps a finalized graph. `entity_types` maps every entity id to a
  /// type id; `type_names` names the types.
  Hin(const KnowledgeGraph* graph, std::vector<int32_t> entity_types,
      std::vector<std::string> type_names);

  const KnowledgeGraph& graph() const { return *graph_; }
  size_t num_types() const { return type_names_.size(); }
  int32_t entity_type(EntityId e) const { return entity_types_[e]; }
  const std::string& type_name(int32_t t) const { return type_names_[t]; }

  /// All entities of the given type, ascending.
  const std::vector<EntityId>& EntitiesOfType(int32_t type) const;

  /// Sparse (num_entities x num_entities) adjacency of one relation;
  /// entry (h, t) = 1 iff <h, r, t> is a fact.
  CsrMatrix RelationMatrix(RelationId relation) const;

  /// Commuting matrix of a meta-path: the product of its relation
  /// matrices. Entry (x, y) counts path instances from x to y.
  CsrMatrix CommutingMatrix(const MetaPath& path) const;

  /// Commuting matrix of a meta-graph: the sum over member paths.
  CsrMatrix CommutingMatrix(const MetaGraph& graph) const;

 private:
  const KnowledgeGraph* graph_;
  std::vector<int32_t> entity_types_;
  std::vector<std::string> type_names_;
  std::vector<std::vector<EntityId>> by_type_;
};

}  // namespace kgrec

#endif  // KGREC_GRAPH_HIN_H_
