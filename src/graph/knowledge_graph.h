#ifndef KGREC_GRAPH_KNOWLEDGE_GRAPH_H_
#define KGREC_GRAPH_KNOWLEDGE_GRAPH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/status.h"
#include "math/rng.h"

namespace kgrec {

using EntityId = int32_t;
using RelationId = int32_t;

/// A subject-property-object fact <e_h, r, e_t> (survey Section 3).
struct Triple {
  EntityId head;
  RelationId relation;
  EntityId tail;

  bool operator==(const Triple& other) const {
    return head == other.head && relation == other.relation &&
           tail == other.tail;
  }
};

/// An outgoing edge of an entity: (relation, target).
struct Edge {
  RelationId relation;
  EntityId target;
};

/// A directed heterogeneous graph whose nodes are entities and whose edges
/// are (head, relation, tail) triples — the KG of survey Section 3.
///
/// Usage: register entities/relations, add triples, then Finalize() to
/// build the CSR adjacency used by neighbor queries and sampling. The
/// graph is immutable after Finalize().
class KnowledgeGraph {
 public:
  KnowledgeGraph() = default;

  /// Registers an entity and returns its id; returns the existing id if
  /// the name was already registered.
  EntityId AddEntity(const std::string& name);

  /// Registers a relation type and returns its id.
  RelationId AddRelation(const std::string& name);

  /// Adds a fact. Fails with InvalidArgument if either entity or the
  /// relation has not been registered.
  Status AddTriple(EntityId head, RelationId relation, EntityId tail);

  /// Adds, for every relation r, an inverse relation "r^-1" and the
  /// reversed triples. Must be called before Finalize(). Embedding
  /// propagation and path enumeration treat the graph as undirected via
  /// these inverses, as the surveyed methods do.
  void AddInverseRelations();

  /// Builds the CSR adjacency. Idempotent.
  void Finalize();
  bool finalized() const { return finalized_; }

  size_t num_entities() const { return entity_names_.size(); }
  size_t num_relations() const { return relation_names_.size(); }
  size_t num_triples() const { return triples_.size(); }

  const std::vector<Triple>& triples() const { return triples_; }

  const std::string& entity_name(EntityId id) const {
    return entity_names_[id];
  }
  const std::string& relation_name(RelationId id) const {
    return relation_names_[id];
  }

  /// Looks up an entity id by name; NotFound if absent.
  Status FindEntity(const std::string& name, EntityId* out) const;

  /// Looks up a relation id by name; NotFound if absent.
  Status FindRelation(const std::string& name, RelationId* out) const;

  /// Number of outgoing edges of an entity. Requires finalized().
  size_t OutDegree(EntityId entity) const;

  /// Outgoing edges of an entity (CSR view). Requires finalized().
  const Edge* OutEdges(EntityId entity) const;

  /// Samples exactly `count` outgoing edges of the entity, with
  /// replacement when the degree is smaller than `count` (the fixed-size
  /// receptive field of KGCN, survey Section 4.3). Returns an empty vector
  /// for isolated entities.
  std::vector<Edge> SampleNeighbors(EntityId entity, size_t count,
                                    Rng& rng) const;

  /// As above, but fills `*out` (cleared first), so hot loops — the
  /// KGCN/KGCN-LS receptive-field build, RippleNet-agg's neighborhood
  /// sampling — reuse one buffer instead of allocating per call. Draws
  /// the same RNG sequence as the by-value overload.
  void SampleNeighbors(EntityId entity, size_t count, Rng& rng,
                       std::vector<Edge>* out) const;

  /// True if a triple exists. Requires finalized(). Binary search over
  /// the head's CSR range, which Finalize() sorts by (relation, target):
  /// O(log out-degree).
  bool HasTriple(EntityId head, RelationId relation, EntityId tail) const;

 private:
  std::vector<std::string> entity_names_;
  std::vector<std::string> relation_names_;
  std::unordered_map<std::string, EntityId> entity_index_;
  std::unordered_map<std::string, RelationId> relation_index_;
  std::vector<Triple> triples_;

  bool finalized_ = false;
  std::vector<size_t> adj_ptr_;
  std::vector<Edge> adj_edges_;
};

}  // namespace kgrec

#endif  // KGREC_GRAPH_KNOWLEDGE_GRAPH_H_
