#ifndef KGREC_GRAPH_KNOWLEDGE_GRAPH_H_
#define KGREC_GRAPH_KNOWLEDGE_GRAPH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/mem_stats.h"
#include "core/status.h"
#include "core/string_pool.h"
#include "math/rng.h"

namespace kgrec {

using EntityId = int32_t;
using RelationId = int32_t;

/// CSR offset type. 32-bit by design: the survey's north-star graphs run
/// to 10^7-10^8 facts, far below 2^32, and halving the offset array
/// matters at 10^6+ entities. AddTriple / AddInverseRelations fail with
/// InvalidArgument instead of silently widening past the cap.
using AdjOffset = uint32_t;

/// A subject-property-object fact <e_h, r, e_t> (survey Section 3).
struct Triple {
  EntityId head;
  RelationId relation;
  EntityId tail;

  bool operator==(const Triple& other) const {
    return head == other.head && relation == other.relation &&
           tail == other.tail;
  }
};

/// An outgoing edge of an entity: (relation, target).
struct Edge {
  RelationId relation;
  EntityId target;
};

/// A directed heterogeneous graph whose nodes are entities and whose edges
/// are (head, relation, tail) triples — the KG of survey Section 3.
///
/// Usage: register entities/relations, add triples, then Finalize() to
/// build the CSR adjacency used by neighbor queries and sampling. The
/// graph is immutable after Finalize().
///
/// Memory model (DESIGN.md "Memory model"): entity/relation names are
/// interned once in a StringPool (the lookup index keys on views into the
/// pool, so a name is never stored twice); mega-scale worlds skip names
/// entirely via AddEntities(); CSR offsets are 32-bit AdjOffset behind a
/// checked capacity guard.
class KnowledgeGraph {
 public:
  KnowledgeGraph() = default;
  KnowledgeGraph(KnowledgeGraph&&) = default;
  KnowledgeGraph& operator=(KnowledgeGraph&&) = default;
  /// Copies rebuild the name index against the copied pool, so the
  /// copy's lookup views never dangle into the source.
  KnowledgeGraph(const KnowledgeGraph& other);
  KnowledgeGraph& operator=(const KnowledgeGraph& other);

  /// Registers an entity and returns its id; returns the existing id if
  /// the name was already registered. The name is stored exactly once
  /// (interned); the lookup index references the interned bytes.
  EntityId AddEntity(std::string_view name);

  /// Bulk-registers `count` anonymous entities and returns the first id.
  /// This is the `drop_names` serving/mega mode: ids only, no name
  /// storage at all. A graph is either fully named or fully anonymous —
  /// mixing is a programming error (checked).
  EntityId AddEntities(size_t count);

  /// True when this graph was built without names (AddEntities). Name
  /// lookups return NotFound and entity_name() must not be called.
  bool names_dropped() const { return names_dropped_; }

  /// Registers a relation type and returns its id.
  RelationId AddRelation(std::string_view name);

  /// Adds a fact. Fails with InvalidArgument if either entity or the
  /// relation has not been registered, or if the graph is at the 32-bit
  /// edge capacity (AdjOffset; ~4.29e9 edges).
  Status AddTriple(EntityId head, RelationId relation, EntityId tail);

  /// Adds, for every relation r, an inverse relation "r^-1" and the
  /// reversed triples. Must be called before Finalize(). Embedding
  /// propagation and path enumeration treat the graph as undirected via
  /// these inverses, as the surveyed methods do. Fails with
  /// InvalidArgument when doubling the triples would exceed the 32-bit
  /// edge capacity.
  Status AddInverseRelations();

  /// Builds the CSR adjacency and shrinks the build-phase buffers to
  /// size. Idempotent.
  void Finalize();
  bool finalized() const { return finalized_; }

  /// --- Incremental growth (streaming event batches) ---------------
  /// Post-Finalize mutation is rejected (AddTriple returns
  /// FailedPrecondition) so a stray write can never corrupt the CSR
  /// under readers. The sanctioned growth path brackets the writes:
  /// BeginIncrementalBatch() reopens the build phase (AddEntity /
  /// AddRelation / AddTriple work again; CSR queries are off-limits
  /// until the batch closes), FinalizeIncrementalBatch() rebuilds the
  /// adjacency from the full triple list. Because Finalize() sorts
  /// every row by (relation, target), the rebuilt CSR is bitwise
  /// identical to building the grown graph from scratch — insertion
  /// order never leaks into the adjacency. Requires the triple list
  /// (FailedPrecondition after ReleaseTriples()).
  Status BeginIncrementalBatch();
  Status FinalizeIncrementalBatch();

  /// Frees the triple list after Finalize(), keeping only the CSR
  /// adjacency — roughly 12 bytes per triple back. Opt-in for serving /
  /// factorization-only paths; models that iterate triples() (the KGE
  /// trainers, RippleNet's regularizer, CKE, MKR, ...) must not release.
  void ReleaseTriples();
  bool triples_released() const { return triples_released_; }

  size_t num_entities() const { return num_entities_; }
  size_t num_relations() const { return relation_names_.size(); }
  size_t num_triples() const { return num_triples_; }

  /// The raw triple list. Must not be called after ReleaseTriples().
  const std::vector<Triple>& triples() const;

  /// Entity name (named graphs only; checked against names_dropped()).
  std::string entity_name(EntityId id) const;
  std::string relation_name(RelationId id) const;

  /// Looks up an entity id by name; NotFound if absent (always NotFound
  /// for anonymous graphs).
  Status FindEntity(std::string_view name, EntityId* out) const;

  /// Looks up a relation id by name; NotFound if absent.
  Status FindRelation(std::string_view name, RelationId* out) const;

  /// Number of outgoing edges of an entity. Requires finalized().
  size_t OutDegree(EntityId entity) const;

  /// Outgoing edges of an entity (CSR view). Requires finalized().
  const Edge* OutEdges(EntityId entity) const;

  /// Samples exactly `count` outgoing edges of the entity, with
  /// replacement when the degree is smaller than `count` (the fixed-size
  /// receptive field of KGCN, survey Section 4.3). Returns an empty vector
  /// for isolated entities.
  std::vector<Edge> SampleNeighbors(EntityId entity, size_t count,
                                    Rng& rng) const;

  /// As above, but fills `*out` (cleared first), so hot loops — the
  /// KGCN/KGCN-LS receptive-field build, RippleNet-agg's neighborhood
  /// sampling — reuse one buffer instead of allocating per call. Draws
  /// the same RNG sequence as the by-value overload.
  void SampleNeighbors(EntityId entity, size_t count, Rng& rng,
                       std::vector<Edge>* out) const;

  /// True if a triple exists. Requires finalized(). Binary search over
  /// the head's CSR range, which Finalize() sorts by (relation, target):
  /// O(log out-degree).
  bool HasTriple(EntityId head, RelationId relation, EntityId tail) const;

  /// Reports logical bytes per backing structure (triples, CSR arrays,
  /// name pools, lookup indices) into the visitor.
  void MemoryUse(MemoryVisitor& visitor) const;

  /// Test-only: lowers the 32-bit edge capacity so the overflow guard's
  /// rejection path is exercisable without 4 billion inserts.
  void SetTripleCapacityForTesting(uint64_t cap) { max_triples_ = cap; }

 private:
  void RebuildNameIndices();

  size_t num_entities_ = 0;
  bool names_dropped_ = false;
  StringPool entity_names_;
  StringPool relation_names_;
  /// Keys are views into the pools — the single stored copy of a name.
  std::unordered_map<std::string_view, EntityId> entity_index_;
  std::unordered_map<std::string_view, RelationId> relation_index_;
  std::vector<Triple> triples_;
  size_t num_triples_ = 0;
  uint64_t max_triples_ = UINT32_MAX;
  bool triples_released_ = false;

  bool finalized_ = false;
  bool in_incremental_batch_ = false;
  std::vector<AdjOffset> adj_ptr_;
  std::vector<Edge> adj_edges_;
};

}  // namespace kgrec

#endif  // KGREC_GRAPH_KNOWLEDGE_GRAPH_H_
