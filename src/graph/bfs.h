#ifndef KGREC_GRAPH_BFS_H_
#define KGREC_GRAPH_BFS_H_

#include <vector>

#include "graph/knowledge_graph.h"

namespace kgrec {

/// Unweighted shortest-path (hop) distances from `source` to every
/// entity, following out-edges, cut off at `max_depth`. Unreachable
/// entities (or those beyond the cutoff) get -1. Used by SED's shortest
/// entity distance and by diagnostics.
std::vector<int32_t> BfsDistances(const KnowledgeGraph& graph,
                                  EntityId source, int32_t max_depth);

}  // namespace kgrec

#endif  // KGREC_GRAPH_BFS_H_
