#include "graph/ripple.h"

#include <algorithm>
#include <unordered_set>

#include "core/check.h"
#include "core/thread_pool.h"

namespace kgrec {

std::vector<RippleHop> BuildRippleSets(const KnowledgeGraph& graph,
                                       const std::vector<EntityId>& seeds,
                                       size_t num_hops, size_t max_hop_size,
                                       Rng& rng) {
  KGREC_CHECK(graph.finalized());
  std::vector<RippleHop> hops;
  std::vector<EntityId> frontier = seeds;
  for (size_t k = 0; k < num_hops; ++k) {
    std::vector<Triple> candidates;
    for (EntityId head : frontier) {
      const size_t degree = graph.OutDegree(head);
      const Edge* edges = graph.OutEdges(head);
      for (size_t i = 0; i < degree; ++i) {
        candidates.push_back({head, edges[i].relation, edges[i].target});
      }
    }
    RippleHop hop;
    if (candidates.empty()) {
      // Reuse the previous hop (RippleNet's fallback for dead ends).
      if (!hops.empty()) hop = hops.back();
      hops.push_back(std::move(hop));
      // Frontier unchanged.
      continue;
    }
    if (candidates.size() <= max_hop_size) {
      hop.triples = std::move(candidates);
    } else {
      for (size_t i :
           rng.SampleWithoutReplacement(candidates.size(), max_hop_size)) {
        hop.triples.push_back(candidates[i]);
      }
    }
    std::unordered_set<EntityId> next;
    for (const Triple& t : hop.triples) next.insert(t.tail);
    frontier.assign(next.begin(), next.end());
    std::sort(frontier.begin(), frontier.end());
    hops.push_back(std::move(hop));
  }
  return hops;
}

std::vector<std::vector<RippleHop>> BuildRippleSetsParallel(
    const KnowledgeGraph& graph,
    const std::vector<std::vector<EntityId>>& seed_lists, size_t num_hops,
    size_t max_hop_size, const Rng& base_rng, size_t num_threads) {
  KGREC_CHECK(graph.finalized());
  std::vector<std::vector<RippleHop>> out(seed_lists.size());
  const Status status = ParallelFor(
      seed_lists.size(), num_threads, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          Rng unit_rng = base_rng.Fork(i);
          out[i] = BuildRippleSets(graph, seed_lists[i], num_hops,
                                   max_hop_size, unit_rng);
        }
        return Status::OK();
      });
  KGREC_CHECK(status.ok());
  return out;
}

std::vector<EntityId> RelevantEntities(const std::vector<RippleHop>& hops,
                                       size_t k,
                                       const std::vector<EntityId>& seeds) {
  if (k == 0) return seeds;
  KGREC_CHECK_LE(k, hops.size());
  std::unordered_set<EntityId> set;
  for (const Triple& t : hops[k - 1].triples) set.insert(t.tail);
  std::vector<EntityId> out(set.begin(), set.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace kgrec
