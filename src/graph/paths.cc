#include "graph/paths.h"

#include <unordered_set>

#include "core/check.h"

namespace kgrec {
namespace {

void Dfs(const KnowledgeGraph& graph, EntityId current, EntityId target,
         size_t max_length, size_t max_paths, PathInstance& prefix,
         std::unordered_set<EntityId>& on_path,
         std::vector<PathInstance>& out) {
  if (out.size() >= max_paths) return;
  if (current == target && !prefix.relations.empty()) {
    out.push_back(prefix);
    return;
  }
  if (prefix.relations.size() >= max_length) return;
  const size_t degree = graph.OutDegree(current);
  const Edge* edges = graph.OutEdges(current);
  for (size_t i = 0; i < degree && out.size() < max_paths; ++i) {
    const Edge& edge = edges[i];
    if (on_path.count(edge.target) > 0) continue;  // simple paths only
    prefix.entities.push_back(edge.target);
    prefix.relations.push_back(edge.relation);
    on_path.insert(edge.target);
    Dfs(graph, edge.target, target, max_length, max_paths, prefix, on_path,
        out);
    on_path.erase(edge.target);
    prefix.entities.pop_back();
    prefix.relations.pop_back();
  }
}

}  // namespace

std::vector<PathInstance> EnumeratePaths(const KnowledgeGraph& graph,
                                         EntityId from, EntityId to,
                                         size_t max_length,
                                         size_t max_paths) {
  KGREC_CHECK(graph.finalized());
  std::vector<PathInstance> out;
  PathInstance prefix;
  prefix.entities.push_back(from);
  std::unordered_set<EntityId> on_path{from};
  Dfs(graph, from, to, max_length, max_paths, prefix, on_path, out);
  return out;
}

std::vector<PathInstance> SampleMetaPathInstances(
    const KnowledgeGraph& graph, EntityId from,
    const std::vector<RelationId>& relations, size_t max_paths, Rng& rng) {
  KGREC_CHECK(graph.finalized());
  std::vector<PathInstance> out;
  const size_t attempts = max_paths * 4;
  for (size_t a = 0; a < attempts && out.size() < max_paths; ++a) {
    PathInstance path;
    path.entities.push_back(from);
    EntityId current = from;
    bool ok = true;
    for (RelationId wanted : relations) {
      // Collect matching edges.
      const size_t degree = graph.OutDegree(current);
      const Edge* edges = graph.OutEdges(current);
      std::vector<const Edge*> matching;
      for (size_t i = 0; i < degree; ++i) {
        if (edges[i].relation == wanted) matching.push_back(&edges[i]);
      }
      if (matching.empty()) {
        ok = false;
        break;
      }
      const Edge* chosen = matching[rng.UniformInt(matching.size())];
      path.entities.push_back(chosen->target);
      path.relations.push_back(chosen->relation);
      current = chosen->target;
    }
    if (ok) out.push_back(std::move(path));
  }
  return out;
}

std::string FormatPath(const KnowledgeGraph& graph, const PathInstance& path) {
  KGREC_CHECK(!path.entities.empty());
  std::string out = graph.entity_name(path.entities[0]);
  for (size_t i = 0; i < path.relations.size(); ++i) {
    out += " -[" + graph.relation_name(path.relations[i]) + "]-> ";
    out += graph.entity_name(path.entities[i + 1]);
  }
  return out;
}

}  // namespace kgrec
