#include "graph/bfs.h"

#include <queue>

#include "core/check.h"

namespace kgrec {

std::vector<int32_t> BfsDistances(const KnowledgeGraph& graph,
                                  EntityId source, int32_t max_depth) {
  KGREC_CHECK(graph.finalized());
  std::vector<int32_t> dist(graph.num_entities(), -1);
  std::queue<EntityId> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const EntityId current = frontier.front();
    frontier.pop();
    if (dist[current] >= max_depth) continue;
    const size_t degree = graph.OutDegree(current);
    const Edge* edges = graph.OutEdges(current);
    for (size_t i = 0; i < degree; ++i) {
      if (dist[edges[i].target] < 0) {
        dist[edges[i].target] = dist[current] + 1;
        frontier.push(edges[i].target);
      }
    }
  }
  return dist;
}

}  // namespace kgrec
