#ifndef KGREC_GRAPH_RIPPLE_H_
#define KGREC_GRAPH_RIPPLE_H_

#include <vector>

#include "graph/knowledge_graph.h"

namespace kgrec {

/// One hop of a ripple set: the triples whose head entities are the
/// previous hop's relevant entities (survey Section 3, "User Ripple Set" /
/// "Entity Ripple Set").
struct RippleHop {
  std::vector<Triple> triples;
};

/// Extracts H ripple-set hops starting from the given seed entities.
///
/// Hop k (1-based) contains triples <e_h, r, e_t> with e_h in the (k-1)-hop
/// relevant entity set E^{k-1}; E^0 = seeds (a user's interacted items, or
/// an entity itself). Each hop is down-sampled to at most `max_hop_size`
/// triples (RippleNet's fixed-size ripple sets). When a hop would be empty,
/// the previous hop is reused, as RippleNet does, so that every hop is
/// non-empty whenever the seeds have any outgoing edge.
std::vector<RippleHop> BuildRippleSets(const KnowledgeGraph& graph,
                                       const std::vector<EntityId>& seeds,
                                       size_t num_hops, size_t max_hop_size,
                                       Rng& rng);

/// Builds ripple sets for many seed lists at once, in parallel.
///
/// Unit i draws every down-sampling decision from the counter-forked
/// stream `base_rng.Fork(i)`, so the result for each unit depends only
/// on (graph, seed_lists[i], base_rng) — never on the thread count or
/// on how many draws other units made. `base_rng` itself is not
/// advanced. Empty seed lists yield `num_hops` empty hops.
std::vector<std::vector<RippleHop>> BuildRippleSetsParallel(
    const KnowledgeGraph& graph,
    const std::vector<std::vector<EntityId>>& seed_lists, size_t num_hops,
    size_t max_hop_size, const Rng& base_rng, size_t num_threads);

/// The k-hop relevant entity set E^k implied by ripple hops: the tails of
/// hop k (E^0 = seeds).
std::vector<EntityId> RelevantEntities(const std::vector<RippleHop>& hops,
                                       size_t k,
                                       const std::vector<EntityId>& seeds);

}  // namespace kgrec

#endif  // KGREC_GRAPH_RIPPLE_H_
