#ifndef KGREC_GRAPH_PATHS_H_
#define KGREC_GRAPH_PATHS_H_

#include <string>
#include <vector>

#include "graph/knowledge_graph.h"

namespace kgrec {

/// A concrete path instance e_0 --r_1--> e_1 --...--> e_k in the graph
/// (survey Section 3, "H-hop neighbor" chains). entities has one more
/// element than relations.
struct PathInstance {
  std::vector<EntityId> entities;
  std::vector<RelationId> relations;

  size_t length() const { return relations.size(); }
};

/// Enumerates up to `max_paths` simple paths (no repeated entity) from
/// `from` to `to` with length in [1, max_length], by depth-first search in
/// deterministic edge order. This is RKGE's automatic path mining between
/// user-item pairs (survey Section 4.2).
std::vector<PathInstance> EnumeratePaths(const KnowledgeGraph& graph,
                                         EntityId from, EntityId to,
                                         size_t max_length, size_t max_paths);

/// Samples up to `max_paths` path instances of the given meta-path
/// (relation sequence) starting at `from`, by random walk restricted to
/// matching relations. Paths that dead-end are discarded. Used by MCRec-
/// style meta-path context sampling.
std::vector<PathInstance> SampleMetaPathInstances(
    const KnowledgeGraph& graph, EntityId from,
    const std::vector<RelationId>& relations, size_t max_paths, Rng& rng);

/// Renders a path as "Bob -[watched]-> Avatar -[genre]-> SciFi" using the
/// graph's entity/relation names. The explanation surface of Figure 1.
std::string FormatPath(const KnowledgeGraph& graph, const PathInstance& path);

}  // namespace kgrec

#endif  // KGREC_GRAPH_PATHS_H_
