#ifndef KGREC_GRAPH_AGGREGATORS_H_
#define KGREC_GRAPH_AGGREGATORS_H_

#include <string>
#include <vector>

#include "math/rng.h"
#include "nn/layers.h"
#include "nn/tensor.h"

namespace kgrec {

/// The four neighborhood aggregators of survey Section 4.3 (Eq. 30-33).
enum class AggregatorKind {
  kSum,           ///< Phi(W (e_h + e_N) + b)
  kConcat,        ///< Phi(W (e_h ++ e_N) + b)
  kNeighbor,      ///< Phi(W e_N + b)
  kBiInteraction  ///< Phi(W1 (e_h + e_N) + b1) + Phi(W2 (e_h . e_N) + b2)
};

/// Parses "sum" / "concat" / "neighbor" / "bi-interaction".
AggregatorKind AggregatorKindFromName(const std::string& name);
std::string AggregatorKindName(AggregatorKind kind);

/// A trainable aggregator combining an entity's own embedding with the
/// pooled embedding of its sampled neighborhood. The nonlinearity Phi is
/// tanh for the final propagation layer and relu otherwise, following
/// KGCN; callers choose via `final_layer` at Forward time.
class Aggregator {
 public:
  Aggregator() = default;
  Aggregator(AggregatorKind kind, size_t dim, Rng& rng);

  /// self and neighbor are [B, dim]; returns [B, dim].
  nn::Tensor Forward(const nn::Tensor& self, const nn::Tensor& neighbor,
                     bool final_layer) const;

  std::vector<nn::Tensor> Params() const;

  AggregatorKind kind() const { return kind_; }

 private:
  AggregatorKind kind_ = AggregatorKind::kSum;
  nn::Linear main_;
  nn::Linear interaction_;  // only used by kBiInteraction
};

}  // namespace kgrec

#endif  // KGREC_GRAPH_AGGREGATORS_H_
