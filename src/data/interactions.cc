#include "data/interactions.h"

#include <algorithm>
#include <unordered_set>

#include "core/check.h"

namespace kgrec {

void InteractionDataset::CopyFrom(const InteractionDataset& other) {
  num_users_.store(other.num_users(), std::memory_order_release);
  num_items_ = other.num_items_;
  interactions_ = other.interactions_;
  user_ptr_.clear();
  user_item_flat_.clear();
  user_item_sorted_.clear();
  index_clean_.store(false, std::memory_order_release);
  index_generation_.store(0, std::memory_order_release);
  frozen_ = false;
  frozen_log_size_ = 0;
  frozen_num_users_ = 0;
}

void InteractionDataset::MoveFrom(InteractionDataset&& other) noexcept {
  num_users_.store(other.num_users(), std::memory_order_release);
  num_items_ = other.num_items_;
  interactions_ = std::move(other.interactions_);
  user_ptr_ = std::move(other.user_ptr_);
  user_item_flat_ = std::move(other.user_item_flat_);
  user_item_sorted_ = std::move(other.user_item_sorted_);
  index_clean_.store(other.index_clean_.load(std::memory_order_acquire),
                     std::memory_order_release);
  index_generation_.store(
      other.index_generation_.load(std::memory_order_acquire),
      std::memory_order_release);
  frozen_ = other.frozen_;
  frozen_log_size_ = other.frozen_log_size_;
  frozen_num_users_ = other.frozen_num_users_;
  other.index_clean_.store(false, std::memory_order_release);
  other.frozen_ = false;
}

void InteractionDataset::Add(int32_t user, int32_t item) {
  KGREC_CHECK(user >= 0 && user < num_users());
  KGREC_CHECK(item >= 0 && item < num_items_);
  KGREC_CHECK(interactions_.size() < UINT32_MAX);  // 32-bit index offsets
  interactions_.push_back({user, item});
  if (!frozen_) index_clean_.store(false, std::memory_order_release);
}

void InteractionDataset::GrowUsers(int32_t count) {
  KGREC_CHECK_GE(count, 0);
  KGREC_CHECK(num_users() <= INT32_MAX - count);
  num_users_.fetch_add(count, std::memory_order_acq_rel);
  if (!frozen_) index_clean_.store(false, std::memory_order_release);
}

void InteractionDataset::Freeze() {
  KGREC_CHECK(!frozen_);
  EnsureIndex();
  frozen_ = true;
  frozen_log_size_ = interactions_.size();
  frozen_num_users_ = num_users();
}

void InteractionDataset::Thaw() {
  KGREC_CHECK(frozen_);
  frozen_ = false;
  if (interactions_.size() != frozen_log_size_ ||
      num_users() != frozen_num_users_) {
    index_clean_.store(false, std::memory_order_release);
  }
}

void InteractionDataset::EnsureIndex() const {
  if (index_clean_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(index_mutex_);
  if (index_clean_.load(std::memory_order_relaxed)) return;
  // A rebuild reallocates the flat arrays; inside a frozen epoch that
  // would dangle every span handed out since Freeze(). The pin keeps
  // index_clean_ true for the epoch, so reaching here frozen is a
  // contract violation by definition.
  KGREC_CHECK(!frozen_);
  // Stable counting sort by user: per-user insertion order preserved,
  // exactly the order the old per-user vectors accumulated.
  const size_t n = static_cast<size_t>(num_users());
  user_ptr_.assign(n + 1, 0);
  for (const Interaction& x : interactions_) ++user_ptr_[x.user + 1];
  for (size_t u = 0; u < n; ++u) user_ptr_[u + 1] += user_ptr_[u];
  user_item_flat_.resize(interactions_.size());
  std::vector<uint32_t> cursor(user_ptr_.begin(), user_ptr_.end() - 1);
  for (const Interaction& x : interactions_) {
    user_item_flat_[cursor[x.user]++] = x.item;
  }
  // The Contains() lane: same rows, each sorted ascending.
  user_item_sorted_ = user_item_flat_;
  for (size_t u = 0; u < n; ++u) {
    std::sort(user_item_sorted_.begin() + user_ptr_[u],
              user_item_sorted_.begin() + user_ptr_[u + 1]);
  }
  index_generation_.fetch_add(1, std::memory_order_acq_rel);
  index_clean_.store(true, std::memory_order_release);
}

std::span<const int32_t> InteractionDataset::UserItems(int32_t user) const {
  KGREC_CHECK(user >= 0 && user < num_users());
  EnsureIndex();
  // A user born after a frozen index was pinned has no row yet; the
  // epoch view is an empty history.
  if (static_cast<size_t>(user) + 1 >= user_ptr_.size()) return {};
  return {user_item_flat_.data() + user_ptr_[user],
          user_ptr_[user + 1] - user_ptr_[user]};
}

bool InteractionDataset::Contains(int32_t user, int32_t item) const {
  KGREC_CHECK(user >= 0 && user < num_users());
  if (!index_clean_.load(std::memory_order_acquire)) {
    // Pre-index (or rebuild pending): answer from the log without
    // forcing a rebuild — a rebuild here would reallocate the flat
    // arrays under any concurrently held UserItems() span.
    for (const Interaction& x : interactions_) {
      if (x.user == user && x.item == item) return true;
    }
    return false;
  }
  if (static_cast<size_t>(user) + 1 >= user_ptr_.size()) return false;
  const auto first = user_item_sorted_.begin() + user_ptr_[user];
  const auto last = user_item_sorted_.begin() + user_ptr_[user + 1];
  return std::binary_search(first, last, item);
}

double InteractionDataset::Density() const {
  if (num_users() == 0 || num_items_ == 0) return 0.0;
  return static_cast<double>(interactions_.size()) /
         (static_cast<double>(num_users()) * num_items_);
}

CsrMatrix InteractionDataset::ToCsr() const {
  std::vector<std::tuple<int32_t, int32_t, float>> triplets;
  triplets.reserve(interactions_.size());
  for (const Interaction& x : interactions_) {
    triplets.emplace_back(x.user, x.item, 1.0f);
  }
  return CsrMatrix::FromTriplets(num_users(), num_items_, triplets);
}

std::vector<int32_t> InteractionDataset::ItemsWithInteractions() const {
  std::vector<bool> seen(num_items_, false);
  for (const Interaction& x : interactions_) seen[x.item] = true;
  std::vector<int32_t> out;
  for (int32_t i = 0; i < num_items_; ++i) {
    if (seen[i]) out.push_back(i);
  }
  return out;
}

void InteractionDataset::MemoryUse(MemoryVisitor& visitor) const {
  visitor.Add("interactions.log", VectorBytes(interactions_));
  visitor.Add("interactions.user_ptr", VectorBytes(user_ptr_));
  visitor.Add("interactions.user_items", VectorBytes(user_item_flat_));
  visitor.Add("interactions.user_items_sorted", VectorBytes(user_item_sorted_));
}

DataSplit RatioSplit(const InteractionDataset& data, double test_fraction,
                     Rng& rng) {
  KGREC_CHECK(test_fraction >= 0.0 && test_fraction < 1.0);
  DataSplit split;
  split.train = InteractionDataset(data.num_users(), data.num_items());
  split.test = InteractionDataset(data.num_users(), data.num_items());
  for (int32_t u = 0; u < data.num_users(); ++u) {
    const std::span<const int32_t> history = data.UserItems(u);
    std::vector<int32_t> items(history.begin(), history.end());
    rng.Shuffle(items);
    size_t num_test = static_cast<size_t>(items.size() * test_fraction);
    if (num_test >= items.size() && !items.empty()) num_test = items.size() - 1;
    for (size_t i = 0; i < items.size(); ++i) {
      if (i < num_test) {
        split.test.Add(u, items[i]);
      } else {
        split.train.Add(u, items[i]);
      }
    }
  }
  return split;
}

DataSplit LeaveOneOutSplit(const InteractionDataset& data, Rng& rng) {
  DataSplit split;
  split.train = InteractionDataset(data.num_users(), data.num_items());
  split.test = InteractionDataset(data.num_users(), data.num_items());
  for (int32_t u = 0; u < data.num_users(); ++u) {
    const auto& items = data.UserItems(u);
    if (items.size() < 2) {
      for (int32_t i : items) split.train.Add(u, i);
      continue;
    }
    const size_t held_out = rng.UniformInt(items.size());
    for (size_t i = 0; i < items.size(); ++i) {
      if (i == held_out) {
        split.test.Add(u, items[i]);
      } else {
        split.train.Add(u, items[i]);
      }
    }
  }
  return split;
}

NegativeSampler::NegativeSampler(const InteractionDataset& reference)
    : reference_(reference) {
  // A sampler exists to issue many Contains() probes; on a dirty index
  // each probe would fall back to an O(log) linear scan, turning a
  // post-growth Update() fold into an accidental quadratic. Membership
  // answers are identical either way, so warm the index up front.
  reference_.WarmIndex();
}

int32_t NegativeSampler::Sample(int32_t user, Rng& rng) const {
  const int32_t n = reference_.num_items();
  KGREC_CHECK_GT(n, 0);
  for (int attempt = 0; attempt < 200; ++attempt) {
    const int32_t item = static_cast<int32_t>(rng.UniformInt(n));
    if (!reference_.Contains(user, item)) return item;
  }
  // Dense user: scan for any non-interacted item.
  std::unordered_set<int32_t> owned(reference_.UserItems(user).begin(),
                                    reference_.UserItems(user).end());
  for (int32_t i = 0; i < n; ++i) {
    if (owned.count(i) == 0) return i;
  }
  return static_cast<int32_t>(rng.UniformInt(n));  // user owns everything
}

std::vector<int32_t> NegativeSampler::SampleMany(int32_t user, size_t count,
                                                 Rng& rng) const {
  std::unordered_set<int32_t> chosen;
  const size_t available =
      reference_.num_items() - reference_.UserItems(user).size();
  count = std::min(count, available);
  std::vector<int32_t> out;
  while (out.size() < count) {
    int32_t item = Sample(user, rng);
    if (chosen.insert(item).second) out.push_back(item);
  }
  return out;
}

}  // namespace kgrec
