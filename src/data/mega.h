#ifndef KGREC_DATA_MEGA_H_
#define KGREC_DATA_MEGA_H_

#include <cstdint>

#include "data/interactions.h"
#include "graph/knowledge_graph.h"

namespace kgrec {

/// Configuration of a million-scale synthetic world. Unlike WorldConfig
/// (data/synthetic.h), which plants latent factors and runs KMeans per
/// relation — O(users * items) work and O(items * dim) intermediates —
/// the mega generator uses a cluster-archetype scheme whose cost is
/// linear in the number of facts and interactions, so 10^6 users and
/// 10^7 facts stream straight into the compacted substrate.
///
/// Structure: items are assigned to `num_clusters` archetypes by id
/// (cluster(j) = j mod C). A fact links an item to an attribute value
/// drawn from its cluster's slice of the attribute space with
/// probability `locality` (uniformly otherwise), so attributes correlate
/// with clusters. A user picks an archetype and draws most interactions
/// from that cluster's items, so interactions correlate with the same
/// structure the KG encodes — the signal KG-aware models exploit.
struct MegaWorldConfig {
  int32_t num_users = 1'000'000;
  int32_t num_items = 200'000;
  /// Attribute-value entities, appended after the items in entity-id
  /// space: items are [0, num_items), attributes
  /// [num_items, num_items + num_attr_values).
  int32_t num_attr_values = 100'000;
  int32_t num_relations = 8;
  /// Item -> attribute facts streamed into the KG (before any inverses).
  size_t num_facts = 10'000'000;
  double avg_interactions_per_user = 10.0;
  int32_t num_clusters = 512;
  /// Probability that a fact / interaction is drawn from the
  /// cluster-local slice instead of uniformly.
  double locality = 0.9;
  /// Anonymous entities (KnowledgeGraph::AddEntities): no name pool, no
  /// lookup index. Set false for small debugging worlds.
  bool drop_names = true;
  uint64_t seed = 17;
};

/// A generated mega world. The KG is left un-finalized so callers can
/// add inverse relations or measure the Finalize() step themselves.
struct MegaWorld {
  MegaWorldConfig config;
  KnowledgeGraph kg;
  InteractionDataset interactions;
};

/// The full million-scale tier: 10^6 users, 2x10^5 items, 10^7 facts.
MegaWorldConfig MegaPreset();

/// CI-sized variant of the same scheme (thousands of users, tens of
/// thousands of facts); used by bench/mega_scale --smoke and the
/// bitwise-equivalence gate.
MegaWorldConfig MegaLitePreset();

/// Streamed generation: every fact and interaction goes straight into
/// KnowledgeGraph::AddTriple / InteractionDataset::Add as it is drawn —
/// no materialized triple list, no per-user item buffers. Peak memory is
/// the final substrate plus O(1) working state.
MegaWorld GenerateMegaWorld(const MegaWorldConfig& config);

/// Reference generator for the bitwise-equivalence gate: consumes the
/// exact same RNG draw sequence as GenerateMegaWorld but first
/// materializes the throwaway intermediates the streamed path avoids
/// (a full triple list and per-user vector-of-vectors interaction
/// buffers) before bulk-inserting them. The resulting world must be
/// structurally identical to the streamed one; bench/mega_scale --smoke
/// fails if any triple, interaction, or CSR row diverges.
MegaWorld GenerateMegaWorldReference(const MegaWorldConfig& config);

}  // namespace kgrec

#endif  // KGREC_DATA_MEGA_H_
