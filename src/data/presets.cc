#include "data/presets.h"

#include "core/check.h"

namespace kgrec {
namespace {

WorldConfig Movielens100k() {
  WorldConfig c;
  c.name = "movielens-100k";
  c.num_users = 300;
  c.num_items = 500;
  c.latent_dim = 16;
  c.avg_interactions_per_user = 30.0;  // MovieLens is comparatively dense
  c.interaction_noise = 0.6;
  c.item_relations = {
      {"genre", 12, 2, 0.95f},
      {"director", 60, 1, 0.8f},
      {"actor", 90, 3, 0.7f},
      {"country", 8, 1, 0.3f},
  };
  c.seed = 101;
  return c;
}

WorldConfig Movielens1m() {
  WorldConfig c = Movielens100k();
  c.name = "movielens-1m";
  c.num_users = 700;
  c.num_items = 800;
  c.avg_interactions_per_user = 40.0;
  c.seed = 102;
  return c;
}

WorldConfig BookCrossing() {
  WorldConfig c;
  c.name = "book-crossing";
  c.num_users = 500;
  c.num_items = 900;
  c.latent_dim = 16;
  c.avg_interactions_per_user = 5.0;  // extremely sparse feedback
  c.interaction_noise = 0.9;
  c.item_relations = {
      {"author", 150, 1, 0.85f},
      {"publisher", 40, 1, 0.5f},
      {"subject", 25, 2, 0.9f},
  };
  c.seed = 103;
  return c;
}

WorldConfig AmazonBook() {
  WorldConfig c;
  c.name = "amazon-book";
  c.num_users = 500;
  c.num_items = 800;
  c.latent_dim = 16;
  c.avg_interactions_per_user = 9.0;
  c.interaction_noise = 0.7;
  c.item_relations = {
      {"category", 30, 2, 0.9f},
      {"brand", 80, 1, 0.6f},
      {"also_bought", 120, 2, 0.8f},
  };
  c.seed = 104;
  return c;
}

WorldConfig LastFm() {
  WorldConfig c;
  c.name = "lastfm";
  c.num_users = 400;
  c.num_items = 600;
  c.latent_dim = 16;
  c.avg_interactions_per_user = 18.0;
  c.interaction_noise = 0.6;
  c.item_relations = {
      {"artist", 100, 1, 0.9f},
      {"genre", 15, 2, 0.9f},
      {"label", 40, 1, 0.4f},
  };
  c.seed = 105;
  return c;
}

WorldConfig Yelp() {
  WorldConfig c;
  c.name = "yelp";
  c.num_users = 450;
  c.num_items = 650;
  c.latent_dim = 16;
  c.avg_interactions_per_user = 12.0;
  c.interaction_noise = 0.8;
  c.item_relations = {
      {"city", 20, 1, 0.5f},
      {"category", 25, 2, 0.9f},
      {"price_range", 4, 1, 0.4f},
  };
  c.seed = 106;
  return c;
}

WorldConfig BingNews() {
  WorldConfig c;
  c.name = "bing-news";
  c.num_users = 400;
  c.num_items = 700;
  c.latent_dim = 16;
  c.avg_interactions_per_user = 8.0;  // shallow click histories
  c.interaction_noise = 0.8;
  // News items carry rich entity links (the survey: subgraphs of title
  // entities extracted from Satori).
  c.item_relations = {
      {"entity", 160, 4, 0.85f},
      {"topic", 18, 1, 0.9f},
      {"source", 30, 1, 0.3f},
  };
  c.seed = 107;
  return c;
}

WorldConfig DoubanMovie() {
  WorldConfig c = Movielens100k();
  c.name = "douban-movie";
  c.num_users = 350;
  c.num_items = 550;
  c.avg_interactions_per_user = 22.0;
  c.seed = 108;
  return c;
}

WorldConfig Weibo() {
  WorldConfig c;
  c.name = "weibo";
  c.num_users = 400;
  c.num_items = 200;  // celebrities as "items"
  c.latent_dim = 12;
  c.avg_interactions_per_user = 10.0;
  c.interaction_noise = 0.7;
  c.item_relations = {
      {"profession", 15, 1, 0.9f},
      {"organization", 30, 1, 0.6f},
  };
  c.seed = 109;
  return c;
}

WorldConfig AmazonProduct() {
  WorldConfig c;
  c.name = "amazon-product";
  c.num_users = 500;
  c.num_items = 900;
  c.latent_dim = 16;
  c.avg_interactions_per_user = 7.0;
  c.interaction_noise = 0.8;
  c.item_relations = {
      {"category", 35, 2, 0.9f},
      {"brand", 90, 1, 0.6f},
      {"bought_together", 130, 2, 0.85f},
      {"also_viewed", 100, 2, 0.7f},
  };
  c.seed = 111;
  return c;
}

WorldConfig AlibabaTaobao() {
  WorldConfig c = AmazonProduct();
  c.name = "alibaba-taobao";
  c.num_users = 600;
  c.num_items = 700;
  c.avg_interactions_per_user = 10.0;
  c.seed = 112;
  return c;
}

WorldConfig DianpingFood() {
  WorldConfig c;
  c.name = "dianping-food";
  c.num_users = 400;
  c.num_items = 500;
  c.latent_dim = 16;
  c.avg_interactions_per_user = 11.0;
  c.interaction_noise = 0.7;
  c.item_relations = {
      {"cuisine", 18, 1, 0.9f},
      {"district", 15, 1, 0.5f},
      {"price_band", 5, 1, 0.4f},
  };
  c.seed = 113;
  return c;
}

WorldConfig Dblp() {
  WorldConfig c;
  c.name = "dblp";
  c.num_users = 350;   // researchers
  c.num_items = 150;   // conferences
  c.latent_dim = 12;
  c.avg_interactions_per_user = 6.0;
  c.interaction_noise = 0.6;
  c.item_relations = {
      {"field", 10, 1, 0.95f},
      {"publisher", 6, 1, 0.3f},
  };
  c.seed = 114;
  return c;
}

WorldConfig MeetUp() {
  WorldConfig c;
  c.name = "meetup";
  c.num_users = 400;   // members
  c.num_items = 250;   // meetings
  c.latent_dim = 12;
  c.avg_interactions_per_user = 7.0;
  c.interaction_noise = 0.7;
  c.item_relations = {
      {"topic", 14, 1, 0.9f},
      {"city", 12, 1, 0.5f},
  };
  c.seed = 115;
  return c;
}

WorldConfig DbBook2014() {
  WorldConfig c = BookCrossing();
  c.name = "dbbook2014";
  c.num_users = 350;
  c.num_items = 600;
  c.avg_interactions_per_user = 7.0;
  c.seed = 110;
  return c;
}

}  // namespace

ScenarioPreset GetPreset(const std::string& dataset_name) {
  for (const ScenarioPreset& p : AllPresets()) {
    if (p.config.name == dataset_name) return p;
  }
  KGREC_CHECK(false);  // unknown preset name
  return {};
}

std::vector<ScenarioPreset> AllPresets() {
  return {
      {"Movie", "MovieLens-100K", Movielens100k()},
      {"Movie", "MovieLens-1M", Movielens1m()},
      {"Movie", "DoubanMovie", DoubanMovie()},
      {"Book", "Book-Crossing", BookCrossing()},
      {"Book", "Amazon-Book", AmazonBook()},
      {"Book", "DBbook2014", DbBook2014()},
      {"News", "Bing-News", BingNews()},
      {"Product", "Amazon Product data", AmazonProduct()},
      {"Product", "Alibaba Taobao", AlibabaTaobao()},
      {"POI", "Yelp challenge", Yelp()},
      {"POI", "Dianping-Food", DianpingFood()},
      {"Music", "Last.FM", LastFm()},
      {"Social Platform", "Weibo", Weibo()},
      {"Social Platform", "DBLP", Dblp()},
      {"Social Platform", "MeetUp", MeetUp()},
  };
}

}  // namespace kgrec
