#ifndef KGREC_DATA_SYNTHETIC_H_
#define KGREC_DATA_SYNTHETIC_H_

#include <string>
#include <vector>

#include "data/interactions.h"
#include "graph/hin.h"
#include "graph/knowledge_graph.h"
#include "math/dense.h"

namespace kgrec {

/// One attribute relation of the synthetic item knowledge graph
/// (e.g. "genre" with 12 attribute entities, one link per item).
struct RelationSpec {
  std::string name;
  /// Number of attribute entities of this relation.
  size_t num_values = 8;
  /// How many attribute entities each item links to.
  size_t links_per_item = 1;
  /// In [0,1]: 1 means the attribute assignment is a pure clustering of
  /// the items' true latent factors (the KG carries full preference
  /// signal); 0 means random assignment (pure noise).
  float latent_alignment = 1.0f;
};

/// Configuration of a synthetic recommendation world.
///
/// The generator substitutes for the real datasets of survey Table 4: a
/// ground-truth latent factor model produces both the implicit feedback
/// *and* the knowledge graph (attribute entities are clusters of the item
/// latent vectors), so the KG genuinely carries the signal that KG-based
/// recommenders are designed to exploit.
struct WorldConfig {
  std::string name = "world";
  int32_t num_users = 300;
  int32_t num_items = 500;
  size_t latent_dim = 16;
  /// Average interactions per user; controls the sparsity of R.
  double avg_interactions_per_user = 20.0;
  /// Gumbel temperature when sampling interactions; larger = noisier
  /// preferences, weaker collaborative signal.
  double interaction_noise = 0.6;
  std::vector<RelationSpec> item_relations;
  uint64_t seed = 42;
};

/// A generated world: the full interaction set, the item knowledge graph
/// (entity j == item j for j < num_items; attribute entities follow), the
/// ground-truth factors, and HIN typing information.
struct SyntheticWorld {
  WorldConfig config;
  InteractionDataset interactions;
  KnowledgeGraph item_kg;
  Matrix user_factors;
  Matrix item_factors;
  /// Type of each item_kg entity: 0 = item, 1 + k = attribute of the k-th
  /// relation spec.
  std::vector<int32_t> entity_types;
  std::vector<std::string> type_names;
  /// Relation ids of the forward attribute relations, per spec.
  std::vector<RelationId> relation_ids;
  /// Relation ids of the inverse attribute relations, per spec.
  std::vector<RelationId> inverse_relation_ids;

  /// Typed view of the item graph.
  Hin MakeHin() const {
    return Hin(&item_kg, entity_types, type_names);
  }
};

/// Generates a world deterministically from the config's seed. The item
/// graph is finalized with inverse relations added.
SyntheticWorld GenerateWorld(const WorldConfig& config);

/// A user-item graph (survey Section 4.1, second family): users, items
/// and attributes in one KG, with the training interactions materialized
/// as an "interact" relation. Entity layout: user u -> u,
/// item j -> num_users + j, attributes after.
struct UserItemGraph {
  KnowledgeGraph kg;
  RelationId interact_relation = -1;
  int32_t num_users = 0;
  int32_t num_items = 0;
  /// 0 = user, 1 = item, 2 + k = attribute of relation spec k.
  std::vector<int32_t> entity_types;
  std::vector<std::string> type_names;

  EntityId UserEntity(int32_t user) const { return user; }
  EntityId ItemEntity(int32_t item) const { return num_users + item; }

  Hin MakeHin() const { return Hin(&kg, entity_types, type_names); }
};

/// Builds the user-item KG from a world's item graph and a training set.
/// Only training interactions are added (the test set must stay unseen).
/// The graph is finalized with inverse relations.
UserItemGraph BuildUserItemGraph(const SyntheticWorld& world,
                                 const InteractionDataset& train);

/// Cold-start split: all interactions of a random `item_fraction` of the
/// interacted items go to test (these items are unseen in training);
/// remaining interactions go to train. Survey Section 1's cold-start
/// scenario.
DataSplit ColdItemSplit(const InteractionDataset& data, double item_fraction,
                        Rng& rng);

}  // namespace kgrec

#endif  // KGREC_DATA_SYNTHETIC_H_
