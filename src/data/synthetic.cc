#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "core/check.h"
#include "math/kmeans.h"
#include "math/topk.h"

namespace kgrec {
namespace {

/// Projects item factors through a per-relation random map and blends with
/// noise according to the alignment knob, so different relations cluster
/// the items along different (but latent-derived) views.
Matrix RelationView(const Matrix& item_factors, float alignment, Rng& rng) {
  const size_t n = item_factors.rows();
  const size_t d = item_factors.cols();
  Matrix projection(d, d);
  for (size_t i = 0; i < projection.size(); ++i) {
    projection.data()[i] = static_cast<float>(rng.Normal(0.0, 1.0 / std::sqrt(d)));
  }
  Matrix view(n, d);
  dense::MatMul(item_factors.data(), projection.data(), view.data(), n, d, d);
  const float noise_scale = 1.5f * (1.0f - alignment);
  for (size_t i = 0; i < view.size(); ++i) {
    view.data()[i] = alignment * view.data()[i] +
                     static_cast<float>(rng.Normal(0.0, noise_scale));
  }
  return view;
}

}  // namespace

SyntheticWorld GenerateWorld(const WorldConfig& config) {
  KGREC_CHECK_GT(config.num_users, 0);
  KGREC_CHECK_GT(config.num_items, 0);
  Rng rng(config.seed);

  SyntheticWorld world;
  world.config = config;
  const int32_t m = config.num_users;
  const int32_t n = config.num_items;
  const size_t d = config.latent_dim;

  world.user_factors = Matrix(m, d);
  world.item_factors = Matrix(n, d);
  for (size_t i = 0; i < world.user_factors.size(); ++i) {
    world.user_factors.data()[i] = static_cast<float>(rng.Normal());
  }
  for (size_t i = 0; i < world.item_factors.size(); ++i) {
    world.item_factors.data()[i] = static_cast<float>(rng.Normal());
  }

  // --- Item knowledge graph -------------------------------------------
  world.type_names.push_back("item");
  for (int32_t j = 0; j < n; ++j) {
    world.item_kg.AddEntity("item_" + std::to_string(j));
    world.entity_types.push_back(0);
  }
  for (size_t k = 0; k < config.item_relations.size(); ++k) {
    const RelationSpec& spec = config.item_relations[k];
    KGREC_CHECK_GT(spec.num_values, 0u);
    world.type_names.push_back(spec.name);
    const RelationId rel = world.item_kg.AddRelation(spec.name);
    world.relation_ids.push_back(rel);
    std::vector<EntityId> values;
    for (size_t v = 0; v < spec.num_values; ++v) {
      values.push_back(world.item_kg.AddEntity(spec.name + "_" +
                                               std::to_string(v)));
      world.entity_types.push_back(static_cast<int32_t>(1 + k));
    }
    // Cluster the relation-specific latent view of the items.
    Matrix view = RelationView(world.item_factors, spec.latent_alignment, rng);
    const size_t clusters = std::min<size_t>(spec.num_values, n);
    KMeansResult km = KMeans(view, clusters, /*max_iters=*/15, rng);
    for (int32_t j = 0; j < n; ++j) {
      if (spec.links_per_item <= 1) {
        KGREC_CHECK(world.item_kg
                        .AddTriple(j, rel, values[km.assignment[j]])
                        .ok());
      } else {
        // Link to the nearest `links_per_item` centroids.
        std::vector<float> neg_dist(clusters);
        for (size_t c = 0; c < clusters; ++c) {
          neg_dist[c] = -dense::SquaredDistance(view.Row(j),
                                                km.centroids.Row(c), d);
        }
        for (int32_t c : TopKIndices(neg_dist, spec.links_per_item)) {
          KGREC_CHECK(world.item_kg.AddTriple(j, rel, values[c]).ok());
        }
      }
    }
  }
  KGREC_CHECK(world.item_kg.AddInverseRelations().ok());
  for (size_t k = 0; k < config.item_relations.size(); ++k) {
    RelationId inv = -1;
    KGREC_CHECK(world.item_kg
                    .FindRelation(config.item_relations[k].name + "^-1", &inv)
                    .ok());
    world.inverse_relation_ids.push_back(inv);
  }
  world.item_kg.Finalize();

  // --- Implicit feedback ----------------------------------------------
  world.interactions = InteractionDataset(m, n);
  const double temperature = std::max(1e-3, config.interaction_noise);
  for (int32_t u = 0; u < m; ++u) {
    const double target = config.avg_interactions_per_user *
                          (0.5 + rng.Uniform());
    size_t count = std::max<size_t>(1, static_cast<size_t>(target));
    count = std::min<size_t>(count, static_cast<size_t>(n));
    // Gumbel top-k sampling: the users pick their (noisily) preferred
    // items, yielding implicit feedback that follows the latent model.
    std::vector<float> perturbed(n);
    for (int32_t j = 0; j < n; ++j) {
      const float affinity = dense::Dot(world.user_factors.Row(u),
                                        world.item_factors.Row(j), d);
      double uniform = 0.0;
      do {
        uniform = rng.Uniform();
      } while (uniform <= 1e-300);
      const float gumbel = static_cast<float>(-std::log(-std::log(uniform)));
      perturbed[j] = affinity + static_cast<float>(temperature) * gumbel;
    }
    for (int32_t j : TopKIndices(perturbed, count)) {
      world.interactions.Add(u, j);
    }
  }
  return world;
}

UserItemGraph BuildUserItemGraph(const SyntheticWorld& world,
                                 const InteractionDataset& train) {
  UserItemGraph out;
  out.num_users = train.num_users();
  out.num_items = train.num_items();
  KGREC_CHECK_EQ(out.num_items, world.config.num_items);

  out.type_names.push_back("user");
  out.type_names.push_back("item");
  for (size_t k = 0; k < world.config.item_relations.size(); ++k) {
    out.type_names.push_back(world.config.item_relations[k].name);
  }

  for (int32_t u = 0; u < out.num_users; ++u) {
    out.kg.AddEntity("user_" + std::to_string(u));
    out.entity_types.push_back(0);
  }
  // Re-create the item-graph entities, preserving order, with types
  // shifted by one (user type occupies 0).
  for (size_t e = 0; e < world.item_kg.num_entities(); ++e) {
    out.kg.AddEntity(world.item_kg.entity_name(static_cast<EntityId>(e)));
    out.entity_types.push_back(world.entity_types[e] + 1);
  }
  out.interact_relation = out.kg.AddRelation("interact");
  std::vector<RelationId> rel_map(world.item_kg.num_relations(), -1);
  for (size_t r = 0; r < world.item_kg.num_relations(); ++r) {
    const std::string& name =
        world.item_kg.relation_name(static_cast<RelationId>(r));
    // Skip inverse relations; AddInverseRelations() below re-creates them.
    if (name.size() > 3 && name.substr(name.size() - 3) == "^-1") continue;
    rel_map[r] = out.kg.AddRelation(name);
  }
  for (const Interaction& x : train.interactions()) {
    KGREC_CHECK(out.kg
                    .AddTriple(out.UserEntity(x.user), out.interact_relation,
                               out.ItemEntity(x.item))
                    .ok());
  }
  const EntityId offset = out.num_users;
  for (const Triple& t : world.item_kg.triples()) {
    if (rel_map[t.relation] < 0) continue;  // inverse; re-added below
    KGREC_CHECK(out.kg
                    .AddTriple(t.head + offset, rel_map[t.relation],
                               t.tail + offset)
                    .ok());
  }
  KGREC_CHECK(out.kg.AddInverseRelations().ok());
  out.kg.Finalize();
  return out;
}

DataSplit ColdItemSplit(const InteractionDataset& data, double item_fraction,
                        Rng& rng) {
  KGREC_CHECK(item_fraction >= 0.0 && item_fraction < 1.0);
  std::vector<int32_t> interacted = data.ItemsWithInteractions();
  rng.Shuffle(interacted);
  const size_t num_cold =
      static_cast<size_t>(interacted.size() * item_fraction);
  std::unordered_set<int32_t> cold(interacted.begin(),
                                   interacted.begin() + num_cold);
  DataSplit split;
  split.train = InteractionDataset(data.num_users(), data.num_items());
  split.test = InteractionDataset(data.num_users(), data.num_items());
  for (const Interaction& x : data.interactions()) {
    if (cold.count(x.item) > 0) {
      split.test.Add(x.user, x.item);
    } else {
      split.train.Add(x.user, x.item);
    }
  }
  return split;
}

}  // namespace kgrec
