#ifndef KGREC_DATA_PRESETS_H_
#define KGREC_DATA_PRESETS_H_

#include <string>
#include <vector>

#include "data/synthetic.h"

namespace kgrec {

/// A scenario preset emulating one of the datasets of survey Table 4.
struct ScenarioPreset {
  std::string scenario;   ///< e.g. "Movie"
  std::string dataset;    ///< e.g. "MovieLens-100K"
  WorldConfig config;     ///< scaled-down synthetic stand-in
};

/// Returns the preset for a dataset name from Table 4 (case-sensitive):
/// "movielens-100k", "movielens-1m", "book-crossing", "amazon-book",
/// "lastfm", "yelp", "bing-news", "douban-movie", "weibo", "dbbook2014".
/// Scales are reduced ~100x-10000x versus the originals so that every
/// model trains on one CPU core in seconds; the density and KG-richness
/// *profiles* follow the originals (e.g. Book-Crossing is much sparser
/// than MovieLens; Bing-News items have rich entity links but shallow
/// user histories).
ScenarioPreset GetPreset(const std::string& dataset_name);

/// All presets, one per Table 4 dataset family we emulate.
std::vector<ScenarioPreset> AllPresets();

}  // namespace kgrec

#endif  // KGREC_DATA_PRESETS_H_
