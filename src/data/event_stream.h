#ifndef KGREC_DATA_EVENT_STREAM_H_
#define KGREC_DATA_EVENT_STREAM_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "data/interactions.h"
#include "data/synthetic.h"
#include "graph/knowledge_graph.h"

namespace kgrec {

/// What happened at one timestamp of a streaming world (DESIGN.md §13).
enum class EventKind {
  kNewUser,         ///< a cold-start user enters the system
  kNewInteraction,  ///< an existing user interacts with an item
  kNewEntity,       ///< a new attribute entity enters the item KG
  kNewFact,         ///< a new (head, relation, tail) fact links into the KG
};

/// One timestamped event. Only the fields of the event's kind are
/// meaningful; the rest stay -1 / empty. A kNewFact carries both the
/// forward relation and its inverse so appliers can keep the
/// inverse-closed invariant of every finalized graph in this repo
/// atomically — replayed prefixes then match from-scratch builds at
/// every timestamp, not just at batch boundaries.
struct Event {
  int64_t timestamp = 0;  ///< strictly increasing, 1..stream size
  EventKind kind = EventKind::kNewInteraction;

  int32_t user = -1;  ///< kNewUser, kNewInteraction
  int32_t item = -1;  ///< kNewInteraction

  EntityId entity = -1;      ///< kNewEntity: the id the entity must get
  int32_t entity_type = -1;  ///< kNewEntity: 1 + relation-spec index
  std::string entity_name;   ///< kNewEntity: interned on apply

  EntityId head = -1;              ///< kNewFact
  RelationId relation = -1;        ///< kNewFact: forward relation id
  RelationId inverse_relation = -1;///< kNewFact: its "^-1" id
  EntityId tail = -1;              ///< kNewFact
};

/// A contiguous slice of the stream, as handed to Recommender::Update.
struct EventBatch {
  std::span<const Event> events;

  bool empty() const { return events.empty(); }
  size_t size() const { return events.size(); }
};

/// Configures a streaming view of a synthetic world: the trailing
/// `1 - base_user_fraction` of the users and the last
/// `held_out_values_per_relation` attribute entities of every relation
/// are withheld from the base snapshot and arrive as timestamped events
/// in deterministic seeded order.
struct EventStreamConfig {
  WorldConfig world;
  /// Fraction of users present at t = 0 (at least one).
  double base_user_fraction = 0.7;
  /// Attribute entities per relation arriving mid-stream (each relation
  /// keeps at least one value in the base snapshot).
  size_t held_out_values_per_relation = 2;
  /// Seed of the user-event / KG-event interleaving.
  uint64_t stream_seed = 17;
};

/// A from-scratch reference build of the streamed world at a timestamp:
/// exactly what GenerateWorld would have produced had the world always
/// contained the prefix's users, entities and facts.
struct StreamSnapshot {
  InteractionDataset interactions;
  KnowledgeGraph item_kg;
  std::vector<int32_t> entity_types;  ///< same convention as SyntheticWorld
};

/// A timestamped event-stream view of a synthetic world.
///
/// GenerateWorld(config.world) is run once; its users and attribute
/// entities are then partitioned into a *base snapshot* (served/fit at
/// t = 0) and a stream of events. Because the item KG is named, held-out
/// entities are relabeled to the tail of the id space (base entities
/// keep their relative order and get compact ids), so the base graph is
/// a contiguous id prefix and every arrival appends — ids never shift
/// under a live model. Users are already ordered, so the held-out users
/// are simply the id suffix [base_num_users, num_users).
///
/// Determinism contract: the event list is a pure function of the
/// config (world seed + stream seed). Replaying any prefix through
/// ApplyBatch on copies of the base structures yields an
/// InteractionDataset whose log is element-wise identical to
/// MaterializeAt(t)'s, and a KnowledgeGraph whose finalized CSR rows
/// and triple multiset are identical to MaterializeAt(t)'s — the
/// from-scratch build of the world at that timestamp. (Triple *list*
/// order differs — replay interleaves forward/inverse per event — which
/// is why equality is defined on the sort-canonicalized structures;
/// see StreamEquals.)
class EventStream {
 public:
  explicit EventStream(const EventStreamConfig& config);

  const std::vector<Event>& events() const { return events_; }
  size_t size() const { return events_.size(); }

  /// A batch view of the half-open timestamp range (begin, end].
  /// Timestamps are 1-based and dense, so this is events_[begin..end).
  EventBatch Batch(size_t begin, size_t end) const;

  int32_t base_num_users() const { return base_num_users_; }
  int32_t total_num_users() const { return config_.world.num_users; }
  int32_t num_items() const { return config_.world.num_items; }
  size_t base_num_entities() const { return base_num_entities_; }
  size_t total_num_entities() const {
    return base_num_entities_ + new_entities_.size();
  }
  const EventStreamConfig& config() const { return config_; }

  /// The base snapshot (fresh copies): users [0, base_num_users) with
  /// their full histories, and the item KG over the base entities,
  /// inverse-closed and finalized.
  InteractionDataset BaseInteractions() const;
  KnowledgeGraph BaseItemKg() const;
  std::vector<int32_t> BaseEntityTypes() const;

  /// The user-item KG for the graph-embedding family, streaming layout:
  /// ALL user entities (including not-yet-arrived ones) are registered
  /// up front so the item-entity offset never shifts; only base users'
  /// interactions are edges. num_users is the total user space.
  UserItemGraph BaseUserItemGraph() const;

  /// Applies a batch in event order. Interactions: Freeze -> append ->
  /// Thaw, so concurrent epoch readers never observe a mid-rebuild
  /// index. KG: BeginIncrementalBatch -> Add{Entity,Triple} ->
  /// FinalizeIncrementalBatch (skipped when the batch carries no KG
  /// events). Entity ids are KGREC_CHECKed to land where the stream
  /// assigned them.
  void ApplyBatch(const EventBatch& batch, InteractionDataset* interactions,
                  KnowledgeGraph* item_kg) const;

  /// Same, for the streaming user-item KG (relation/entity ids are
  /// remapped into its space; kNewUser is structurally a no-op because
  /// every user entity pre-exists).
  void ApplyBatchToUserItemGraph(const EventBatch& batch,
                                 UserItemGraph* graph) const;

  /// From-scratch reference build of the world at `timestamp` (0 = the
  /// base snapshot). The bitwise gate replays a prefix and compares
  /// against this.
  StreamSnapshot MaterializeAt(int64_t timestamp) const;

 private:
  struct NewEntityInfo {
    EntityId id;             // remapped (suffix) id
    int32_t type;            // 1 + relation-spec index
    std::string name;
  };

  EventStreamConfig config_;
  SyntheticWorld world_;  ///< the original full world (raw material)

  int32_t base_num_users_ = 0;
  size_t base_num_entities_ = 0;
  size_t num_forward_relations_ = 0;

  /// new_id[original entity id] -> remapped id.
  std::vector<EntityId> remap_;
  /// Base entity names in remapped id order.
  std::vector<std::string> base_entity_names_;
  std::vector<int32_t> base_entity_types_;
  /// Held-out entities in arrival order (remapped ids are the suffix).
  std::vector<NewEntityInfo> new_entities_;
  /// Base forward triples in remapped ids, original generation order.
  std::vector<Triple> base_forward_triples_;

  std::vector<Event> events_;
};

/// Structural equality of a replayed prefix against a reference build:
/// interaction logs element-wise equal, same entity/relation/triple
/// counts, every finalized CSR row equal, triple multisets equal.
/// Returns false (and fills *why) on the first divergence.
bool StreamEquals(const InteractionDataset& a, const KnowledgeGraph& a_kg,
                  const InteractionDataset& b, const KnowledgeGraph& b_kg,
                  std::string* why);

}  // namespace kgrec

#endif  // KGREC_DATA_EVENT_STREAM_H_
