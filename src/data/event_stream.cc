#include "data/event_stream.h"

#include <algorithm>
#include <string>
#include <utility>

#include "core/check.h"

namespace kgrec {

EventStream::EventStream(const EventStreamConfig& config)
    : config_(config), world_(GenerateWorld(config.world)) {
  const int32_t m = config_.world.num_users;
  const int32_t n = config_.world.num_items;
  const size_t num_specs = config_.world.item_relations.size();
  num_forward_relations_ = num_specs;

  base_num_users_ = static_cast<int32_t>(m * config_.base_user_fraction);
  base_num_users_ = std::max<int32_t>(1, std::min(base_num_users_, m));

  // The generator registers relations in spec order before adding
  // inverses, so forward ids are 0..K-1 and inverse of k is K + k. The
  // event relation fields and the base rebuild both rely on that layout.
  for (size_t k = 0; k < num_specs; ++k) {
    KGREC_CHECK_EQ(world_.relation_ids[k], static_cast<RelationId>(k));
    KGREC_CHECK_EQ(world_.inverse_relation_ids[k],
                   static_cast<RelationId>(num_specs + k));
  }

  // --- Entity relabeling ---------------------------------------------
  // Original layout: items 0..n-1, then each relation's values
  // consecutively. Base entities (items + retained values) keep their
  // relative order under compact ids; the last `held_out` values of
  // every relation become the id suffix, in (relation, value) order, so
  // arrivals append and never shift a live model's id space.
  const size_t orig_entities = world_.item_kg.num_entities();
  remap_.assign(orig_entities, -1);
  EntityId next = 0;
  for (int32_t j = 0; j < n; ++j) remap_[j] = next++;
  size_t orig = static_cast<size_t>(n);
  for (size_t k = 0; k < num_specs; ++k) {
    const size_t values = config_.world.item_relations[k].num_values;
    const size_t held =
        std::min(config_.held_out_values_per_relation, values - 1);
    for (size_t v = 0; v + held < values; ++v) {
      remap_[orig + v] = next++;
    }
    orig += values;
  }
  base_num_entities_ = static_cast<size_t>(next);
  orig = static_cast<size_t>(n);
  for (size_t k = 0; k < num_specs; ++k) {
    const size_t values = config_.world.item_relations[k].num_values;
    const size_t held =
        std::min(config_.held_out_values_per_relation, values - 1);
    for (size_t v = values - held; v < values; ++v) {
      const size_t oid = orig + v;
      remap_[oid] = next;
      new_entities_.push_back(
          {next, static_cast<int32_t>(1 + k),
           world_.item_kg.entity_name(static_cast<EntityId>(oid))});
      ++next;
    }
    orig += values;
  }
  KGREC_CHECK_EQ(static_cast<size_t>(next), orig_entities);

  base_entity_names_.resize(base_num_entities_);
  base_entity_types_.resize(base_num_entities_);
  for (size_t e = 0; e < orig_entities; ++e) {
    const EntityId id = remap_[e];
    if (static_cast<size_t>(id) >= base_num_entities_) continue;
    base_entity_names_[id] =
        world_.item_kg.entity_name(static_cast<EntityId>(e));
    base_entity_types_[id] = world_.entity_types[e];
  }

  // Forward triples split into the base graph and per-arrival fact
  // lists, both preserving the generator's triple order. Heads are
  // always items (base); only held-out tails defer a triple.
  std::vector<std::vector<Triple>> facts(new_entities_.size());
  for (const Triple& t : world_.item_kg.triples()) {
    if (static_cast<size_t>(t.relation) >= num_specs) continue;  // inverse
    const Triple mapped{remap_[t.head], t.relation, remap_[t.tail]};
    if (static_cast<size_t>(mapped.tail) < base_num_entities_) {
      base_forward_triples_.push_back(mapped);
    } else {
      facts[mapped.tail - static_cast<EntityId>(base_num_entities_)]
          .push_back(mapped);
    }
  }

  // --- Event lists ----------------------------------------------------
  std::vector<Event> user_events;
  for (int32_t u = base_num_users_; u < m; ++u) {
    Event birth;
    birth.kind = EventKind::kNewUser;
    birth.user = u;
    user_events.push_back(std::move(birth));
    for (int32_t item : world_.interactions.UserItems(u)) {
      Event e;
      e.kind = EventKind::kNewInteraction;
      e.user = u;
      e.item = item;
      user_events.push_back(std::move(e));
    }
  }
  std::vector<Event> kg_events;
  for (size_t i = 0; i < new_entities_.size(); ++i) {
    const NewEntityInfo& ne = new_entities_[i];
    Event birth;
    birth.kind = EventKind::kNewEntity;
    birth.entity = ne.id;
    birth.entity_type = ne.type;
    birth.entity_name = ne.name;
    kg_events.push_back(std::move(birth));
    for (const Triple& t : facts[i]) {
      Event e;
      e.kind = EventKind::kNewFact;
      e.head = t.head;
      e.relation = t.relation;
      e.inverse_relation =
          static_cast<RelationId>(num_forward_relations_) + t.relation;
      e.tail = t.tail;
      kg_events.push_back(std::move(e));
    }
  }

  // Seeded uniform interleaving preserving within-list order (so every
  // user's birth precedes their interactions, every entity's birth its
  // facts). Timestamps are dense and 1-based.
  Rng rng(config_.stream_seed);
  events_.reserve(user_events.size() + kg_events.size());
  size_t i = 0;
  size_t j = 0;
  int64_t timestamp = 1;
  while (i < user_events.size() || j < kg_events.size()) {
    bool take_user;
    if (j == kg_events.size()) {
      take_user = true;
    } else if (i == user_events.size()) {
      take_user = false;
    } else {
      const size_t remaining_user = user_events.size() - i;
      const size_t remaining_kg = kg_events.size() - j;
      take_user =
          rng.UniformInt(remaining_user + remaining_kg) < remaining_user;
    }
    Event e = take_user ? std::move(user_events[i++])
                        : std::move(kg_events[j++]);
    e.timestamp = timestamp++;
    events_.push_back(std::move(e));
  }
}

EventBatch EventStream::Batch(size_t begin, size_t end) const {
  KGREC_CHECK(begin <= end);
  KGREC_CHECK(end <= events_.size());
  return {std::span<const Event>(events_.data() + begin, end - begin)};
}

InteractionDataset EventStream::BaseInteractions() const {
  InteractionDataset out(base_num_users_, config_.world.num_items);
  for (int32_t u = 0; u < base_num_users_; ++u) {
    for (int32_t item : world_.interactions.UserItems(u)) {
      out.Add(u, item);
    }
  }
  return out;
}

KnowledgeGraph EventStream::BaseItemKg() const {
  KnowledgeGraph kg;
  for (const std::string& name : base_entity_names_) {
    kg.AddEntity(name);
  }
  for (const RelationSpec& spec : config_.world.item_relations) {
    kg.AddRelation(spec.name);
  }
  for (const Triple& t : base_forward_triples_) {
    KGREC_CHECK(kg.AddTriple(t.head, t.relation, t.tail).ok());
  }
  KGREC_CHECK(kg.AddInverseRelations().ok());
  kg.Finalize();
  return kg;
}

std::vector<int32_t> EventStream::BaseEntityTypes() const {
  return base_entity_types_;
}

UserItemGraph EventStream::BaseUserItemGraph() const {
  UserItemGraph out;
  const int32_t m = config_.world.num_users;
  out.num_users = m;  // the full user space is pre-registered
  out.num_items = config_.world.num_items;
  out.type_names.push_back("user");
  out.type_names.push_back("item");
  for (const RelationSpec& spec : config_.world.item_relations) {
    out.type_names.push_back(spec.name);
  }
  // Every user entity exists from t = 0 — a kNewUser is then
  // structurally a no-op and item-entity ids (num_users + j) never
  // shift when cold-start users arrive.
  for (int32_t u = 0; u < m; ++u) {
    out.kg.AddEntity("user_" + std::to_string(u));
    out.entity_types.push_back(0);
  }
  for (size_t e = 0; e < base_num_entities_; ++e) {
    out.kg.AddEntity(base_entity_names_[e]);
    out.entity_types.push_back(base_entity_types_[e] + 1);
  }
  out.interact_relation = out.kg.AddRelation("interact");
  for (const RelationSpec& spec : config_.world.item_relations) {
    out.kg.AddRelation(spec.name);
  }
  for (int32_t u = 0; u < base_num_users_; ++u) {
    for (int32_t item : world_.interactions.UserItems(u)) {
      KGREC_CHECK(out.kg
                      .AddTriple(out.UserEntity(u), out.interact_relation,
                                 out.ItemEntity(item))
                      .ok());
    }
  }
  for (const Triple& t : base_forward_triples_) {
    KGREC_CHECK(out.kg
                    .AddTriple(t.head + m, 1 + t.relation, t.tail + m)
                    .ok());
  }
  KGREC_CHECK(out.kg.AddInverseRelations().ok());
  out.kg.Finalize();
  return out;
}

void EventStream::ApplyBatch(const EventBatch& batch,
                             InteractionDataset* interactions,
                             KnowledgeGraph* item_kg) const {
  KGREC_CHECK(interactions != nullptr);
  bool any_kg = false;
  for (const Event& e : batch.events) {
    if (e.kind == EventKind::kNewEntity || e.kind == EventKind::kNewFact) {
      any_kg = true;
      break;
    }
  }
  interactions->Freeze();
  if (any_kg) {
    KGREC_CHECK(item_kg != nullptr);
    KGREC_CHECK(item_kg->BeginIncrementalBatch().ok());
  }
  for (const Event& e : batch.events) {
    switch (e.kind) {
      case EventKind::kNewUser:
        KGREC_CHECK_EQ(e.user, interactions->num_users());
        interactions->GrowUsers(1);
        break;
      case EventKind::kNewInteraction:
        interactions->Add(e.user, e.item);
        break;
      case EventKind::kNewEntity: {
        const EntityId id = item_kg->AddEntity(e.entity_name);
        KGREC_CHECK_EQ(id, e.entity);
        break;
      }
      case EventKind::kNewFact:
        KGREC_CHECK(item_kg->AddTriple(e.head, e.relation, e.tail).ok());
        KGREC_CHECK(
            item_kg->AddTriple(e.tail, e.inverse_relation, e.head).ok());
        break;
    }
  }
  if (any_kg) {
    KGREC_CHECK(item_kg->FinalizeIncrementalBatch().ok());
  }
  interactions->Thaw();
}

void EventStream::ApplyBatchToUserItemGraph(const EventBatch& batch,
                                            UserItemGraph* graph) const {
  KGREC_CHECK(graph != nullptr);
  bool any_edges = false;
  for (const Event& e : batch.events) {
    if (e.kind != EventKind::kNewUser) {
      any_edges = true;
      break;
    }
  }
  if (!any_edges) return;
  // Relation layout of the streaming user-item graph: interact = 0,
  // attribute k = 1 + k, and AddInverseRelations appended inverses in
  // the same order, so inverse(r) = (1 + K) + r.
  const RelationId num_forward =
      static_cast<RelationId>(1 + num_forward_relations_);
  const EntityId offset = graph->num_users;
  KGREC_CHECK(graph->kg.BeginIncrementalBatch().ok());
  for (const Event& e : batch.events) {
    switch (e.kind) {
      case EventKind::kNewUser:
        break;  // the user entity pre-exists
      case EventKind::kNewInteraction: {
        const EntityId user = graph->UserEntity(e.user);
        const EntityId item = graph->ItemEntity(e.item);
        KGREC_CHECK(
            graph->kg.AddTriple(user, graph->interact_relation, item).ok());
        KGREC_CHECK(
            graph->kg
                .AddTriple(item, num_forward + graph->interact_relation, user)
                .ok());
        break;
      }
      case EventKind::kNewEntity: {
        const EntityId id = graph->kg.AddEntity(e.entity_name);
        KGREC_CHECK_EQ(id, offset + e.entity);
        graph->entity_types.push_back(e.entity_type + 1);
        break;
      }
      case EventKind::kNewFact: {
        const RelationId rel = 1 + e.relation;
        KGREC_CHECK(
            graph->kg
                .AddTriple(offset + e.head, rel, offset + e.tail)
                .ok());
        KGREC_CHECK(graph->kg
                        .AddTriple(offset + e.tail, num_forward + rel,
                                   offset + e.head)
                        .ok());
        break;
      }
    }
  }
  KGREC_CHECK(graph->kg.FinalizeIncrementalBatch().ok());
}

StreamSnapshot EventStream::MaterializeAt(int64_t timestamp) const {
  KGREC_CHECK_GE(timestamp, 0);
  const size_t prefix =
      std::min(static_cast<size_t>(timestamp), events_.size());

  StreamSnapshot snap;
  int32_t users = base_num_users_;
  for (size_t i = 0; i < prefix; ++i) {
    if (events_[i].kind == EventKind::kNewUser) ++users;
  }
  snap.interactions = InteractionDataset(users, config_.world.num_items);
  for (int32_t u = 0; u < base_num_users_; ++u) {
    for (int32_t item : world_.interactions.UserItems(u)) {
      snap.interactions.Add(u, item);
    }
  }
  for (size_t i = 0; i < prefix; ++i) {
    const Event& e = events_[i];
    if (e.kind == EventKind::kNewInteraction) {
      snap.interactions.Add(e.user, e.item);
    }
  }

  for (const std::string& name : base_entity_names_) {
    snap.item_kg.AddEntity(name);
  }
  snap.entity_types = base_entity_types_;
  for (size_t i = 0; i < prefix; ++i) {
    const Event& e = events_[i];
    if (e.kind != EventKind::kNewEntity) continue;
    const EntityId id = snap.item_kg.AddEntity(e.entity_name);
    KGREC_CHECK_EQ(id, e.entity);
    snap.entity_types.push_back(e.entity_type);
  }
  for (const RelationSpec& spec : config_.world.item_relations) {
    snap.item_kg.AddRelation(spec.name);
  }
  for (const Triple& t : base_forward_triples_) {
    KGREC_CHECK(snap.item_kg.AddTriple(t.head, t.relation, t.tail).ok());
  }
  for (size_t i = 0; i < prefix; ++i) {
    const Event& e = events_[i];
    if (e.kind != EventKind::kNewFact) continue;
    KGREC_CHECK(snap.item_kg.AddTriple(e.head, e.relation, e.tail).ok());
  }
  KGREC_CHECK(snap.item_kg.AddInverseRelations().ok());
  snap.item_kg.Finalize();
  return snap;
}

bool StreamEquals(const InteractionDataset& a, const KnowledgeGraph& a_kg,
                  const InteractionDataset& b, const KnowledgeGraph& b_kg,
                  std::string* why) {
  auto fail = [why](const std::string& reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  if (a.num_users() != b.num_users()) return fail("num_users differ");
  if (a.num_items() != b.num_items()) return fail("num_items differ");
  if (a.interactions().size() != b.interactions().size()) {
    return fail("interaction counts differ");
  }
  for (size_t i = 0; i < a.interactions().size(); ++i) {
    const Interaction& x = a.interactions()[i];
    const Interaction& y = b.interactions()[i];
    if (x.user != y.user || x.item != y.item) {
      return fail("interaction log diverges at index " + std::to_string(i));
    }
  }
  if (a_kg.num_entities() != b_kg.num_entities()) {
    return fail("entity counts differ");
  }
  if (a_kg.num_relations() != b_kg.num_relations()) {
    return fail("relation counts differ");
  }
  if (a_kg.num_triples() != b_kg.num_triples()) {
    return fail("triple counts differ");
  }
  if (!a_kg.finalized() || !b_kg.finalized()) {
    return fail("graphs must be finalized to compare CSR rows");
  }
  for (size_t e = 0; e < a_kg.num_entities(); ++e) {
    const EntityId id = static_cast<EntityId>(e);
    if (a_kg.OutDegree(id) != b_kg.OutDegree(id)) {
      return fail("out-degree differs at entity " + std::to_string(e));
    }
    const Edge* ea = a_kg.OutEdges(id);
    const Edge* eb = b_kg.OutEdges(id);
    for (size_t i = 0; i < a_kg.OutDegree(id); ++i) {
      if (ea[i].relation != eb[i].relation || ea[i].target != eb[i].target) {
        return fail("CSR row differs at entity " + std::to_string(e));
      }
    }
  }
  // Triple multisets (list order legitimately differs between a replay
  // and a from-scratch build).
  if (!a_kg.triples_released() && !b_kg.triples_released()) {
    std::vector<Triple> ta = a_kg.triples();
    std::vector<Triple> tb = b_kg.triples();
    auto less = [](const Triple& x, const Triple& y) {
      if (x.head != y.head) return x.head < y.head;
      if (x.relation != y.relation) return x.relation < y.relation;
      return x.tail < y.tail;
    };
    std::sort(ta.begin(), ta.end(), less);
    std::sort(tb.begin(), tb.end(), less);
    for (size_t i = 0; i < ta.size(); ++i) {
      if (!(ta[i] == tb[i])) return fail("triple multisets differ");
    }
  }
  if (!a_kg.names_dropped() && !b_kg.names_dropped()) {
    for (size_t e = 0; e < a_kg.num_entities(); ++e) {
      if (a_kg.entity_name(static_cast<EntityId>(e)) !=
          b_kg.entity_name(static_cast<EntityId>(e))) {
        return fail("entity names differ at " + std::to_string(e));
      }
    }
  }
  return true;
}

}  // namespace kgrec
