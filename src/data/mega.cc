#include "data/mega.h"

#include <algorithm>
#include <string>
#include <vector>

#include "core/check.h"

namespace kgrec {
namespace {

/// Single source of truth for the draw sequence: both generators walk
/// this exact loop, so they consume identical RNG streams regardless of
/// where the sinks put the data. Any change to the draw order here
/// changes both paths together and the bitwise gate stays meaningful.
template <typename FactSink, typename InteractionSink>
void StreamWorld(const MegaWorldConfig& c, Rng& rng, FactSink&& fact,
                 InteractionSink&& interaction) {
  const uint64_t num_items = static_cast<uint64_t>(c.num_items);
  const uint64_t num_attrs = static_cast<uint64_t>(c.num_attr_values);
  const uint64_t clusters = static_cast<uint64_t>(c.num_clusters);
  // Each (cluster, relation) pair owns a deterministic slice of the
  // attribute space; `locality` of the facts land in it.
  const uint64_t slice = num_attrs / clusters + 1;
  for (size_t f = 0; f < c.num_facts; ++f) {
    const int32_t item = static_cast<int32_t>(rng.UniformInt(num_items));
    const int32_t rel = static_cast<int32_t>(
        rng.UniformInt(static_cast<uint64_t>(c.num_relations)));
    int32_t attr;
    if (rng.Uniform() < c.locality) {
      const uint64_t cluster = static_cast<uint64_t>(item) % clusters;
      const uint64_t base =
          (cluster * 7919 + static_cast<uint64_t>(rel) * 104729) % num_attrs;
      attr = static_cast<int32_t>((base + rng.UniformInt(slice)) % num_attrs);
    } else {
      attr = static_cast<int32_t>(rng.UniformInt(num_attrs));
    }
    fact(item, rel, attr);
  }
  const uint64_t count_span = std::max<uint64_t>(
      1, static_cast<uint64_t>(2.0 * c.avg_interactions_per_user));
  for (int32_t u = 0; u < c.num_users; ++u) {
    const uint64_t cluster = rng.UniformInt(clusters);
    // Cluster k owns the items congruent to k mod num_clusters.
    const uint64_t cluster_items =
        (num_items - cluster + clusters - 1) / clusters;
    const size_t count = 1 + rng.UniformInt(count_span);
    for (size_t i = 0; i < count; ++i) {
      int32_t item;
      if (rng.Uniform() < c.locality && cluster_items > 0) {
        item = static_cast<int32_t>(cluster +
                                    clusters * rng.UniformInt(cluster_items));
      } else {
        item = static_cast<int32_t>(rng.UniformInt(num_items));
      }
      interaction(u, item);
    }
  }
}

void Validate(const MegaWorldConfig& c) {
  KGREC_CHECK_GT(c.num_users, 0);
  KGREC_CHECK_GT(c.num_items, 0);
  KGREC_CHECK_GT(c.num_attr_values, 0);
  KGREC_CHECK_GT(c.num_relations, 0);
  KGREC_CHECK_GT(c.num_clusters, 0);
  KGREC_CHECK(c.num_clusters <= c.num_items);
  KGREC_CHECK(c.locality >= 0.0 && c.locality <= 1.0);
}

/// Entity/relation registration draws nothing from the RNG, so named and
/// anonymous worlds with the same seed are structurally identical.
void RegisterSchema(const MegaWorldConfig& c, KnowledgeGraph* kg) {
  if (c.drop_names) {
    kg->AddEntities(static_cast<size_t>(c.num_items) + c.num_attr_values);
  } else {
    for (int32_t j = 0; j < c.num_items; ++j) {
      kg->AddEntity("item_" + std::to_string(j));
    }
    for (int32_t v = 0; v < c.num_attr_values; ++v) {
      kg->AddEntity("attr_" + std::to_string(v));
    }
  }
  for (int32_t r = 0; r < c.num_relations; ++r) {
    kg->AddRelation("rel_" + std::to_string(r));
  }
}

}  // namespace

MegaWorldConfig MegaPreset() { return MegaWorldConfig{}; }

MegaWorldConfig MegaLitePreset() {
  MegaWorldConfig c;
  c.num_users = 2'000;
  c.num_items = 400;
  c.num_attr_values = 200;
  c.num_relations = 4;
  c.num_facts = 20'000;
  c.avg_interactions_per_user = 8.0;
  c.num_clusters = 16;
  return c;
}

MegaWorld GenerateMegaWorld(const MegaWorldConfig& config) {
  Validate(config);
  Rng rng(config.seed);
  MegaWorld world;
  world.config = config;
  RegisterSchema(config, &world.kg);
  world.interactions =
      InteractionDataset(config.num_users, config.num_items);
  const int32_t attr_offset = config.num_items;
  StreamWorld(
      config, rng,
      [&](int32_t item, int32_t rel, int32_t attr) {
        KGREC_CHECK(
            world.kg.AddTriple(item, rel, attr_offset + attr).ok());
      },
      [&](int32_t user, int32_t item) {
        world.interactions.Add(user, item);
      });
  return world;
}

MegaWorld GenerateMegaWorldReference(const MegaWorldConfig& config) {
  Validate(config);
  Rng rng(config.seed);
  MegaWorld world;
  world.config = config;
  RegisterSchema(config, &world.kg);
  world.interactions =
      InteractionDataset(config.num_users, config.num_items);
  const int32_t attr_offset = config.num_items;
  // Materialize first — the layout the compaction work removed — then
  // bulk-insert in the same order the sinks above would have seen.
  std::vector<Triple> facts;
  facts.reserve(config.num_facts);
  std::vector<std::vector<int32_t>> user_items(config.num_users);
  StreamWorld(
      config, rng,
      [&](int32_t item, int32_t rel, int32_t attr) {
        facts.push_back({item, rel, attr_offset + attr});
      },
      [&](int32_t user, int32_t item) {
        user_items[user].push_back(item);
      });
  for (const Triple& t : facts) {
    KGREC_CHECK(world.kg.AddTriple(t.head, t.relation, t.tail).ok());
  }
  for (int32_t u = 0; u < config.num_users; ++u) {
    for (int32_t item : user_items[u]) world.interactions.Add(u, item);
  }
  return world;
}

}  // namespace kgrec
