#ifndef KGREC_DATA_INTERACTIONS_H_
#define KGREC_DATA_INTERACTIONS_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "core/mem_stats.h"
#include "math/rng.h"
#include "math/sparse.h"

namespace kgrec {

/// One implicit-feedback event R_ij = 1 (survey Section 3, User Feedback).
struct Interaction {
  int32_t user;
  int32_t item;
};

/// An implicit-feedback dataset: m users, n items, and the observed
/// (user, item) pairs of the binary interaction matrix R.
///
/// Memory model: the only always-on storage is the flat interaction log
/// (8 bytes per event). The per-user history view (UserItems) is served
/// from a flat CSR index — one offset array plus one item array — built
/// lazily by a stable counting sort, so per-user insertion order is
/// preserved without a heap-allocated vector per user (the old
/// vector<vector> layout cost ~56+ bytes of header/allocator overhead
/// per user at 10^6 users before the first item was stored).
class InteractionDataset {
 public:
  InteractionDataset() : num_users_(0), num_items_(0) {}
  InteractionDataset(int32_t num_users, int32_t num_items)
      : num_users_(num_users), num_items_(num_items) {}

  /// The CSR index cache is rebuilt lazily in the destination; copies and
  /// moves are cheap in the sense that they never carry a stale index.
  InteractionDataset(const InteractionDataset& other) { CopyFrom(other); }
  InteractionDataset& operator=(const InteractionDataset& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  InteractionDataset(InteractionDataset&& other) noexcept {
    MoveFrom(std::move(other));
  }
  InteractionDataset& operator=(InteractionDataset&& other) noexcept {
    if (this != &other) MoveFrom(std::move(other));
    return *this;
  }

  int32_t num_users() const {
    return num_users_.load(std::memory_order_acquire);
  }
  int32_t num_items() const { return num_items_; }
  size_t num_interactions() const { return interactions_.size(); }

  /// Appends an interaction (deduplicated per user lazily by callers).
  /// Unfrozen: invalidates the user index; the next UserItems() call
  /// rebuilds it, so it must not race with concurrent readers (see
  /// index_generation()). Frozen: appends to the log WITHOUT touching
  /// the index — epoch readers stay valid (see Freeze()).
  void Add(int32_t user, int32_t item);

  /// Widens the user space by `count` new (empty-history) users at the
  /// tail of the id range. Unfrozen: invalidates the index (the offset
  /// array is sized per user). Frozen: deferred — the new users report
  /// empty histories until Thaw() rebuilds.
  void GrowUsers(int32_t count);

  /// True if (user, item) is observed. With a built index this is a
  /// binary search over the user's sorted row (hot in streaming dedup
  /// and negative sampling); before the first index build — or while a
  /// rebuild is pending — it linear-scans the log instead of forcing a
  /// rebuild, so a one-off query never reallocates the index under
  /// concurrent span holders. While frozen it answers from the pinned
  /// epoch, like UserItems().
  bool Contains(int32_t user, int32_t item) const;

  /// Builds the lazy index now if it is dirty (no-op inside a frozen
  /// epoch, whose pinned index is already clean). Call before a burst of
  /// Contains() queries — e.g. negative sampling against a freshly grown
  /// log — so each query takes the binary-search lane instead of the
  /// linear log fallback.
  void WarmIndex() const { EnsureIndex(); }

  const std::vector<Interaction>& interactions() const {
    return interactions_;
  }

  /// The items the user interacted with, in insertion order (the user's
  /// history E_u^0). A view into the flat index: valid until the next
  /// Add(). Safe to call concurrently from many threads — the first
  /// caller builds the index under a lock, later callers take the
  /// lock-free fast path.
  std::span<const int32_t> UserItems(int32_t user) const;

  /// Density |R| / (m * n).
  double Density() const;

  /// The interaction matrix R as sparse CSR (m x n, entries 1.0).
  CsrMatrix ToCsr() const;

  /// Items with at least one interaction.
  std::vector<int32_t> ItemsWithInteractions() const;

  /// Reports logical bytes of the interaction log and the CSR user index
  /// into the visitor.
  void MemoryUse(MemoryVisitor& visitor) const;

  /// --- Streaming epochs -------------------------------------------
  /// The unfrozen index has a documented no-race contract: Add()
  /// invalidates it, and the next UserItems() call reallocates the flat
  /// arrays — any std::span still held from the previous build dangles.
  /// Freeze() pins an epoch for the streaming path: it builds the index
  /// once, and until Thaw() every Add()/GrowUsers() lands in the log
  /// without invalidating it, so readers can never observe a
  /// mid-rebuild index. While frozen, UserItems() and Contains() answer
  /// from the pinned snapshot (post-freeze events and users are
  /// invisible); Thaw() lifts the pin and invalidates iff anything
  /// changed, making the appended events visible on the next rebuild.
  void Freeze();
  void Thaw();
  bool frozen() const { return frozen_; }

  /// Rebuild counter for the CSR index (0 = never built). A reader that
  /// caches a span across its own calls can record the generation at
  /// acquisition and KGREC_CHECK it is unchanged before each reuse —
  /// that is the assertable form of the no-race contract. Rebuilds are
  /// themselves KGREC_CHECKed to never run inside a frozen epoch.
  uint64_t index_generation() const {
    return index_generation_.load(std::memory_order_acquire);
  }

 private:
  void CopyFrom(const InteractionDataset& other);
  void MoveFrom(InteractionDataset&& other) noexcept;
  void EnsureIndex() const;

  /// Atomic because a frozen-epoch writer may GrowUsers() while reader
  /// threads bounds-check against it in UserItems()/Contains(); readers
  /// seeing either the pre- or post-grow count are both correct (a user
  /// born after the pinned index reports an empty history).
  std::atomic<int32_t> num_users_;
  int32_t num_items_;
  std::vector<Interaction> interactions_;

  /// Flat CSR user->items index, derived from interactions_ on demand.
  /// 32-bit offsets: the interaction count is checked against the
  /// AdjOffset-style cap on Add. user_item_sorted_ mirrors
  /// user_item_flat_ with each user's row sorted ascending — the
  /// Contains() binary-search lane.
  mutable std::vector<uint32_t> user_ptr_;
  mutable std::vector<int32_t> user_item_flat_;
  mutable std::vector<int32_t> user_item_sorted_;
  mutable std::atomic<bool> index_clean_{false};
  mutable std::atomic<uint64_t> index_generation_{0};
  mutable std::mutex index_mutex_;

  /// Epoch pin (see Freeze()). Written only by the single mutator
  /// thread while readers are quiescent at the Freeze/Thaw boundaries.
  bool frozen_ = false;
  size_t frozen_log_size_ = 0;
  int32_t frozen_num_users_ = 0;
};

/// A train/test partition of an InteractionDataset.
struct DataSplit {
  InteractionDataset train;
  InteractionDataset test;
};

/// Splits each user's interactions uniformly at random, holding out
/// `test_fraction` of them (at least one interaction stays in train when
/// the user has any). Users with a single interaction contribute no test
/// pairs.
DataSplit RatioSplit(const InteractionDataset& data, double test_fraction,
                     Rng& rng);

/// Holds out exactly one random interaction per user (users with fewer
/// than two interactions contribute no test pairs).
DataSplit LeaveOneOutSplit(const InteractionDataset& data, Rng& rng);

/// Samples items the user did NOT interact with in the reference dataset;
/// used both for training (BPR/CTR negatives) and evaluation candidates.
class NegativeSampler {
 public:
  /// `reference` must outlive the sampler.
  explicit NegativeSampler(const InteractionDataset& reference);

  /// Uniformly samples a non-interacted item for the user.
  int32_t Sample(int32_t user, Rng& rng) const;

  /// Samples `count` distinct non-interacted items for the user (fewer if
  /// the user interacted with almost everything).
  std::vector<int32_t> SampleMany(int32_t user, size_t count, Rng& rng) const;

 private:
  const InteractionDataset& reference_;
};

}  // namespace kgrec

#endif  // KGREC_DATA_INTERACTIONS_H_
