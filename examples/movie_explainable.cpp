// Explainable movie recommendation (the survey's Figure 1 scenario as a
// library user would run it): train KPRN on a MovieLens-like world and
// print, for a few users, the top recommendations together with the KG
// paths that justify them.
//
// Build & run:  ./build/examples/movie_explainable

#include <cstdio>

#include "core/recommender.h"
#include "data/presets.h"
#include "data/synthetic.h"
#include "explain/explainer.h"
#include "math/topk.h"
#include "path/kprn.h"

int main() {
  using namespace kgrec;  // example-local convenience

  WorldConfig config = GetPreset("movielens-100k").config;
  config.num_users = 150;
  config.num_items = 250;
  SyntheticWorld world = GenerateWorld(config);
  Rng rng(5);
  DataSplit split = RatioSplit(world.interactions, 0.2, rng);
  UserItemGraph graph = BuildUserItemGraph(world, split.train);

  KprnConfig model_config;
  model_config.epochs = 4;
  KprnRecommender model(model_config);
  RecContext ctx;
  ctx.train = &split.train;
  ctx.item_kg = &world.item_kg;
  ctx.user_item_graph = &graph;
  ctx.seed = 3;
  std::printf("training KPRN (LSTM path encoder) ...\n");
  model.Fit(ctx);

  Explainer explainer(graph, split.train);
  for (int32_t user = 0; user < 3; ++user) {
    std::vector<float> scores = model.ScoreAll(user, config.num_items);
    for (int32_t j = 0; j < config.num_items; ++j) {
      if (split.train.Contains(user, j)) scores[j] = -1e30f;
    }
    std::printf("\nuser %d — top-3 recommendations:\n", user);
    for (int32_t j : TopKIndices(scores, 3)) {
      std::printf("  %-10s (score %.3f)\n",
                  world.item_kg.entity_name(j).c_str(), scores[j]);
      const std::string best_path = model.ExplainBestPath(user, j);
      if (!best_path.empty()) {
        std::printf("    KPRN's strongest path: %s\n", best_path.c_str());
      }
      for (const Explanation& e : explainer.Explain(user, j, 1)) {
        std::printf("    because %s\n", e.text.c_str());
      }
    }
  }
  return 0;
}
