// Quickstart: the 60-second tour of kgrec.
//   1. generate a synthetic recommendation world (interactions + item KG),
//   2. split it, 3. train a KG-based recommender (RippleNet),
//   4. evaluate, 5. print top-5 recommendations for one user,
//   6. checkpoint the model and serve the same top-5 from a fresh load,
//   7. stand up the serving layer (ServeHandle + Router) over the
//      checkpoint and hot-swap a new generation under live requests,
//   8. serve catalog top-K through the retrieval layer: a factorizable
//      model answers through an exact index (bitwise the exhaustive
//      scan, O(K) memory), then through the SQ8 quantized scan
//      (ScanPrecision::kSq8 — 4x fewer bytes streamed, same bitwise
//      top-K after the exact re-rank), and the non-factorizable
//      RippleNet ranker serves through the two-stage
//      retrieve-then-rerank path.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "cf/mf.h"
#include "core/recommender.h"
#include "core/registry.h"
#include "core/thread_pool.h"
#include "data/synthetic.h"
#include "eval/protocol.h"
#include "math/topk.h"
#include "serve/router.h"
#include "serve/serve_handle.h"
#include "unified/ripplenet.h"

int main() {
  using namespace kgrec;  // example-local convenience

  // 1. A world: 200 users, 300 movies, a KG with genres and directors.
  WorldConfig config;
  config.num_users = 200;
  config.num_items = 300;
  config.avg_interactions_per_user = 15.0;
  config.item_relations = {{"genre", 12, 1, 0.9f},
                           {"director", 40, 1, 0.8f}};
  config.seed = 42;
  SyntheticWorld world = GenerateWorld(config);
  std::printf("world: %zu interactions, KG with %zu entities / %zu facts\n",
              world.interactions.num_interactions(),
              world.item_kg.num_entities(), world.item_kg.num_triples());

  // 2. Hold out 20% of each user's history for evaluation.
  Rng rng(7);
  DataSplit split = RatioSplit(world.interactions, 0.2, rng);

  // 3. Train RippleNet (preference propagation over the item KG).
  RippleNetConfig model_config;
  model_config.epochs = 8;
  RippleNetRecommender model(model_config);
  RecContext ctx;
  ctx.train = &split.train;
  ctx.item_kg = &world.item_kg;
  ctx.seed = 1;
  model.Fit(ctx);

  // 4. Evaluate: CTR AUC and top-10 ranking quality. Evaluation is
  // parallel; per-user RNG streams make the metrics bitwise identical at
  // any thread count.
  EvalOptions eval;
  eval.num_threads = ThreadPool::HardwareThreads();
  eval.k = 10;
  eval.num_negatives = 50;
  eval.seed = 9;
  CtrMetrics ctr = EvaluateCtr(model, split.train, split.test, eval);
  TopKMetrics topk = EvaluateTopK(model, split.train, split.test, eval);
  std::printf("AUC=%.3f  ACC=%.3f  NDCG@10=%.3f  Recall@10=%.3f\n", ctr.auc,
              ctr.accuracy, topk.ndcg, topk.recall);

  // 5. Top-5 unseen items for user 0.
  const int32_t user = 0;
  std::vector<float> scores = model.ScoreAll(user, config.num_items);
  for (int32_t j = 0; j < config.num_items; ++j) {
    if (split.train.Contains(user, j)) scores[j] = -1e30f;
  }
  const std::vector<int32_t> top5 = TopKIndices(scores, 5);
  std::printf("top-5 for user %d:", user);
  for (int32_t j : top5) {
    std::printf(" %s", world.item_kg.entity_name(j).c_str());
  }
  std::printf("\n");

  // 6. Checkpoint and serve from a fresh process-like restore. Save()
  // writes only the learned parameters (atomically — a crashed save
  // never clobbers a good checkpoint); Load() recomputes derived state
  // (here: the ripple sets) from the same data and seed, so the restored
  // model serves *bitwise* the scores the fitted one did. Loading into a
  // mismatched model type or hyper-parameter set fails with a clear
  // Status instead of garbage scores; kgrec::LoadModel() reconstructs
  // the concrete type from the checkpoint header alone when the model
  // was trained with registry-default hyper-parameters.
  const std::string path = "/tmp/kgrec_quickstart.kgrc";
  Status status = model.Save(path);
  if (!status.ok()) {
    std::printf("save failed: %s\n", status.ToString().c_str());
    return 1;
  }
  RippleNetRecommender served(model_config);
  status = served.Load(ctx, path);
  if (!status.ok()) {
    std::printf("load failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::vector<float> served_scores = served.ScoreAll(user, config.num_items);
  for (int32_t j = 0; j < config.num_items; ++j) {
    if (split.train.Contains(user, j)) served_scores[j] = -1e30f;
  }
  const std::vector<int32_t> served_top5 = TopKIndices(served_scores, 5);
  std::printf("top-5 after restore:");
  for (int32_t j : served_top5) {
    std::printf(" %s", world.item_kg.entity_name(j).c_str());
  }
  std::printf("  (%s)\n",
              served_top5 == top5 ? "identical" : "DIVERGED — BUG");
  if (served_top5 != top5) return 1;

  // 7. The long-lived serving layer: wrap the checkpoint in an immutable
  // ServeHandle and put a Router in front of it — per-user request
  // batching on a thread pool behind a bounded admission queue. Then hot
  // swap: load a new generation (here: the same checkpoint again),
  // atomically flip the serving handle, and drain in-flight requests on
  // the old one. Responses carry the generation that served them, and
  // the scores stay bitwise identical to direct ScoreItems calls.
  // (This model was trained under non-default hyper-parameters, so the
  // handle restores into an explicitly-configured prototype; a checkpoint
  // of a registry-default model opens without one.)
  std::shared_ptr<const serve::ServeHandle> handle;
  status = serve::ServeHandle::Open(
      ctx, path, std::make_unique<RippleNetRecommender>(model_config),
      /*generation=*/1, &handle);
  if (!status.ok()) {
    std::printf("serve open failed: %s\n", status.ToString().c_str());
    return 1;
  }
  serve::Router router({}, handle);
  serve::ScoreResponse before_swap = router.ScoreSync({user, top5});
  std::shared_ptr<const serve::ServeHandle> next_generation;
  status = serve::ServeHandle::Open(
      ctx, path, std::make_unique<RippleNetRecommender>(model_config),
      /*generation=*/2, &next_generation);
  if (status.ok()) status = router.Swap(next_generation);
  if (!status.ok()) {
    std::printf("hot swap failed: %s\n", status.ToString().c_str());
    return 1;
  }
  serve::ScoreResponse after_swap = router.ScoreSync({user, top5});
  const bool swap_ok = before_swap.status.ok() && after_swap.status.ok() &&
                       before_swap.scores == after_swap.scores;
  std::printf(
      "served top-5 via router: generation %llu -> %llu after hot swap "
      "(%s)\n",
      static_cast<unsigned long long>(before_swap.generation),
      static_cast<unsigned long long>(after_swap.generation),
      swap_ok ? "scores bitwise identical" : "DIVERGED — BUG");
  if (!swap_ok) {
    std::remove(path.c_str());
    return 1;
  }

  // 8. Catalog top-K through the retrieval layer. A factorizable model
  // (MF: score = u . v) adopted with the default RetrievalSpec serves
  // Recommend() through an exact index over its exported item factors —
  // bitwise identical to scoring the whole catalog, but O(K) memory per
  // request. Exclusion (here: the user's training history) is a
  // selection filter, never a score overwrite, so it composes with any
  // score a model can emit (including -inf).
  std::vector<int32_t> history;
  for (int32_t j = 0; j < config.num_items; ++j) {
    if (split.train.Contains(user, j)) history.push_back(j);
  }
  auto mf = std::make_unique<MfRecommender>();
  mf->Fit(ctx);
  const auto indexed =
      serve::ServeHandle::Adopt(std::move(mf), ctx, /*generation=*/3);
  const auto via_index = indexed->Recommend(user, 5, history);
  std::printf("MF top-5 via %s:", indexed->retrieval_mode().c_str());
  for (const auto& [item, score] : via_index) {
    std::printf(" %s", world.item_kg.entity_name(item).c_str());
  }
  std::printf("\n");

  // The same model through the SQ8 quantized scan: item factors are
  // stored as one byte per entry (4x smaller working set), the scan
  // runs on the int8 SIMD kernels, and an exact float32 re-rank of the
  // over-fetched candidate pool restores the ranking — the served
  // top-K is bitwise identical to the float32 index's.
  auto mf_sq8 = std::make_unique<MfRecommender>();
  mf_sq8->Fit(ctx);
  serve::RetrievalSpec sq8_spec;
  sq8_spec.scan.precision = retrieval::ScanPrecision::kSq8;
  std::shared_ptr<const serve::ServeHandle> quantized;
  status = serve::ServeHandle::Adopt(std::move(mf_sq8), ctx,
                                     /*generation=*/5, sq8_spec, &quantized);
  if (!status.ok()) {
    std::printf("sq8 adopt failed: %s\n", status.ToString().c_str());
    return 1;
  }
  const auto via_sq8 = quantized->Recommend(user, 5, history);
  std::printf("MF top-5 via %s: %s\n", quantized->retrieval_mode().c_str(),
              via_sq8 == via_index ? "bitwise identical to the float scan"
                                   : "DIVERGED — BUG");
  if (via_sq8 != via_index) return 1;

  // Non-factorizable rankers (RippleNet's score has no (q_u, x_v)
  // form) use the two-stage architecture: a factorizable candidate
  // model's index retrieves C candidates, the ranker re-ranks exactly
  // those with one batched ScoreItems call. Returned scores are the
  // ranker's own — here the checkpoint-restored RippleNet's.
  auto candidate = std::make_shared<MfRecommender>();
  candidate->Fit(ctx);
  auto ranker = std::make_unique<RippleNetRecommender>(model_config);
  status = ranker->Load(ctx, path);
  std::remove(path.c_str());
  if (!status.ok()) {
    std::printf("ranker load failed: %s\n", status.ToString().c_str());
    return 1;
  }
  serve::RetrievalSpec spec;
  spec.mode = serve::RetrievalSpec::Mode::kTwoStage;
  spec.candidate_model = candidate;
  std::shared_ptr<const serve::ServeHandle> two_stage;
  status = serve::ServeHandle::Adopt(std::move(ranker), ctx,
                                     /*generation=*/4, spec, &two_stage);
  if (!status.ok()) {
    std::printf("two-stage adopt failed: %s\n", status.ToString().c_str());
    return 1;
  }
  const auto reranked = two_stage->Recommend(user, 5, history);
  std::printf("%s top-5 via %s (MF candidates):", two_stage->model_name().c_str(),
              two_stage->retrieval_mode().c_str());
  for (const auto& [item, score] : reranked) {
    std::printf(" %s", world.item_kg.entity_name(item).c_str());
  }
  std::printf("\n");
  return reranked.size() == 5 ? 0 : 1;
}
