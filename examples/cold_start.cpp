// Cold-start study (survey Section 1): 25% of the catalogue has no
// training interactions at all. A plain latent-factor model cannot rank
// those items better than chance; KG-based models reach them through
// their attributes. Ranks cold positives against cold negatives so
// popularity cannot help anyone.
//
// Build & run:  ./build/examples/cold_start

#include <cstdio>

#include "cf/mf.h"
#include "core/recommender.h"
#include "data/synthetic.h"
#include "embed/cke.h"
#include "eval/metrics.h"
#include "unified/kgcn.h"

int main() {
  using namespace kgrec;  // example-local convenience

  WorldConfig config;
  config.num_users = 250;
  config.num_items = 400;
  config.avg_interactions_per_user = 18.0;
  config.item_relations = {{"genre", 12, 2, 0.95f},
                           {"brand", 40, 1, 0.8f}};
  config.seed = 77;
  SyntheticWorld world = GenerateWorld(config);
  Rng rng(8);
  DataSplit cold = ColdItemSplit(world.interactions, 0.25, rng);
  std::printf("%zu warm training interactions; %zu interactions on cold "
              "items held out\n\n",
              cold.train.num_interactions(), cold.test.num_interactions());

  RecContext ctx;
  ctx.train = &cold.train;
  ctx.item_kg = &world.item_kg;
  ctx.seed = 21;

  std::vector<int32_t> cold_items = cold.test.ItemsWithInteractions();
  auto cold_auc = [&](Recommender& model) {
    model.Fit(ctx);
    Rng pair_rng(9);
    std::vector<float> scores;
    std::vector<int> labels;
    for (const Interaction& x : cold.test.interactions()) {
      int32_t negative = -1;
      for (int tries = 0; tries < 100 && negative < 0; ++tries) {
        const int32_t candidate =
            cold_items[pair_rng.UniformInt(cold_items.size())];
        if (!cold.test.Contains(x.user, candidate)) negative = candidate;
      }
      if (negative < 0) continue;
      scores.push_back(model.Score(x.user, x.item));
      labels.push_back(1);
      scores.push_back(model.Score(x.user, negative));
      labels.push_back(0);
    }
    std::printf("%-8s cold-item AUC = %.3f\n", model.name().c_str(),
                Auc(scores, labels));
  };

  BprMfRecommender bpr;
  cold_auc(bpr);  // ~0.5: cold factors were never updated
  CkeRecommender cke;
  cold_auc(cke);  // > 0.5: TransR entity embedding carries genre/brand
  KgcnRecommender kgcn;
  cold_auc(kgcn);  // > 0.5: propagation reaches cold items via attributes
  return 0;
}
