// News recommendation with DKN (survey Section 5, Bing-News scenario):
// news items are entity-rich but user histories are shallow, so the
// knowledge channel carries most of the signal. DKN is compared against
// BPR-MF on a Bing-News-like world.
//
// Build & run:  ./build/examples/news_dkn

#include <cstdio>

#include "cf/mf.h"
#include "core/recommender.h"
#include "data/presets.h"
#include "embed/dkn.h"
#include "eval/protocol.h"

int main() {
  using namespace kgrec;  // example-local convenience

  WorldConfig config = GetPreset("bing-news").config;
  config.num_users = 250;
  config.num_items = 400;
  SyntheticWorld world = GenerateWorld(config);
  Rng rng(6);
  DataSplit split = RatioSplit(world.interactions, 0.25, rng);
  std::printf(
      "bing-news-like world: %zu clicks, density %.2f%%, KG: %zu entities\n",
      split.train.num_interactions(), 100.0 * split.train.Density(),
      world.item_kg.num_entities());

  RecContext ctx;
  ctx.train = &split.train;
  ctx.item_kg = &world.item_kg;
  ctx.seed = 11;

  auto evaluate = [&](Recommender& model) {
    model.Fit(ctx);
    Rng eval_rng(12);
    CtrMetrics ctr = EvaluateCtr(model, split.train, split.test, eval_rng);
    TopKMetrics topk =
        EvaluateTopK(model, split.train, split.test, 10, 50, eval_rng);
    std::printf("%-8s AUC=%.3f  F1=%.3f  NDCG@10=%.3f  HR@10=%.3f\n",
                model.name().c_str(), ctr.auc, ctr.f1, topk.ndcg,
                topk.hit_rate);
  };

  BprMfRecommender baseline;
  evaluate(baseline);
  DknConfig dkn_config;
  dkn_config.epochs = 8;
  DknRecommender dkn(dkn_config);
  evaluate(dkn);
  std::printf(
      "\nDKN's candidate-conditioned attention over the click history plus\n"
      "the TransD entity channel lifts quality over plain MF on this\n"
      "entity-rich, shallow-history workload (survey Section 5, News).\n");
  return 0;
}
