// Tests for the mega-scale synthetic world generator (data/mega.h): the
// streamed path must be structurally identical to the materializing
// reference path on the lite config (the same contract bench/mega_scale
// --smoke gates in CI, locked down here at unit-test speed), generation
// must be deterministic by seed, and the lite config must exercise the
// full scheme (multiple clusters, local and non-local draws).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "data/mega.h"

namespace kgrec {
namespace {

MegaWorldConfig TinyConfig() {
  MegaWorldConfig config = MegaLitePreset();
  config.num_users = 300;
  config.num_items = 80;
  config.num_attr_values = 40;
  config.num_facts = 2000;
  config.avg_interactions_per_user = 6.0;
  config.num_clusters = 8;
  return config;
}

void ExpectSameWorld(const MegaWorld& a, const MegaWorld& b) {
  ASSERT_EQ(a.kg.num_entities(), b.kg.num_entities());
  ASSERT_EQ(a.kg.num_relations(), b.kg.num_relations());
  ASSERT_EQ(a.kg.num_triples(), b.kg.num_triples());
  const std::vector<Triple>& ta = a.kg.triples();
  const std::vector<Triple>& tb = b.kg.triples();
  ASSERT_EQ(ta.size(), tb.size());
  for (size_t i = 0; i < ta.size(); ++i) {
    ASSERT_EQ(ta[i], tb[i]) << "triple " << i << " diverges";
  }
  ASSERT_EQ(a.interactions.num_users(), b.interactions.num_users());
  ASSERT_EQ(a.interactions.num_items(), b.interactions.num_items());
  const auto& ia = a.interactions.interactions();
  const auto& ib = b.interactions.interactions();
  ASSERT_EQ(ia.size(), ib.size());
  for (size_t i = 0; i < ia.size(); ++i) {
    ASSERT_EQ(ia[i].user, ib[i].user) << "interaction " << i;
    ASSERT_EQ(ia[i].item, ib[i].item) << "interaction " << i;
  }
}

TEST(MegaWorld, StreamedMatchesReferenceGenerator) {
  // The streamed generator (no materialized intermediates) and the
  // reference generator (full triple list + per-user buffers first)
  // share one draw loop; the worlds must match event for event. Use the
  // named mode so both paths also exercise the name registration branch.
  MegaWorldConfig config = TinyConfig();
  config.drop_names = false;
  MegaWorld streamed = GenerateMegaWorld(config);
  MegaWorld reference = GenerateMegaWorldReference(config);
  ExpectSameWorld(streamed, reference);

  // And the CSR adjacency after Finalize: same neighbor order per row.
  streamed.kg.Finalize();
  reference.kg.Finalize();
  for (EntityId e = 0;
       e < static_cast<EntityId>(streamed.kg.num_entities()); ++e) {
    ASSERT_EQ(streamed.kg.OutDegree(e), reference.kg.OutDegree(e));
    ASSERT_EQ(std::memcmp(streamed.kg.OutEdges(e), reference.kg.OutEdges(e),
                          streamed.kg.OutDegree(e) * sizeof(Edge)),
              0)
        << "CSR row " << e << " diverges";
  }
}

TEST(MegaWorld, DropNamesModeMatchesNamedModeStructurally) {
  // drop_names changes name storage only — the RNG draws, triples and
  // interactions must be identical to the named world's.
  MegaWorldConfig named = TinyConfig();
  named.drop_names = false;
  MegaWorldConfig anon = TinyConfig();
  anon.drop_names = true;
  MegaWorld named_world = GenerateMegaWorld(named);
  MegaWorld anon_world = GenerateMegaWorld(anon);
  EXPECT_FALSE(named_world.kg.names_dropped());
  EXPECT_TRUE(anon_world.kg.names_dropped());
  ExpectSameWorld(named_world, anon_world);
}

TEST(MegaWorld, DeterministicBySeed) {
  const MegaWorldConfig config = TinyConfig();
  MegaWorld a = GenerateMegaWorld(config);
  MegaWorld b = GenerateMegaWorld(config);
  ExpectSameWorld(a, b);

  MegaWorldConfig other = config;
  other.seed = config.seed + 1;
  MegaWorld c = GenerateMegaWorld(other);
  EXPECT_NE(a.kg.triples(), c.kg.triples());
}

TEST(MegaWorld, ShapeMatchesConfig) {
  const MegaWorldConfig config = TinyConfig();
  MegaWorld world = GenerateMegaWorld(config);
  EXPECT_EQ(world.kg.num_entities(),
            static_cast<size_t>(config.num_items + config.num_attr_values));
  EXPECT_EQ(world.kg.num_relations(),
            static_cast<size_t>(config.num_relations));
  EXPECT_EQ(world.kg.num_triples(), config.num_facts);
  EXPECT_EQ(world.interactions.num_users(), config.num_users);
  EXPECT_EQ(world.interactions.num_items(), config.num_items);
  EXPECT_GT(world.interactions.num_interactions(), 0u);
  // Every fact links an item to an attribute entity.
  for (const Triple& t : world.kg.triples()) {
    EXPECT_GE(t.head, 0);
    EXPECT_LT(t.head, config.num_items);
    EXPECT_GE(t.tail, config.num_items);
    EXPECT_LT(t.tail, config.num_items + config.num_attr_values);
    EXPECT_GE(t.relation, 0);
    EXPECT_LT(t.relation, config.num_relations);
  }
}

TEST(MegaWorld, InteractionsCarryClusterStructure) {
  // With locality 0.9 most of a user's items share the user's archetype
  // cluster (item mod C); a structureless world would put ~1/C of the
  // items in any one cluster. This pins that the generator actually
  // plants the signal the KG-aware models are supposed to exploit.
  MegaWorldConfig config = TinyConfig();
  MegaWorld world = GenerateMegaWorld(config);
  size_t majority_hits = 0, total = 0;
  for (int32_t u = 0; u < config.num_users; ++u) {
    const auto items = world.interactions.UserItems(u);
    if (items.size() < 2) continue;
    std::vector<size_t> per_cluster(config.num_clusters, 0);
    for (int32_t item : items) ++per_cluster[item % config.num_clusters];
    size_t best = 0;
    for (size_t count : per_cluster) best = std::max(best, count);
    majority_hits += best;
    total += items.size();
  }
  ASSERT_GT(total, 0u);
  // Expected hit rate is ~locality (0.9); 1/C would be 0.125 here.
  EXPECT_GT(static_cast<double>(majority_hits) / total, 0.6);
}

}  // namespace
}  // namespace kgrec
