// Functional coverage of the serving layer (serve/serve_handle.h,
// serve/router.h): handle construction from checkpoints and from fitted
// models, request/response round-trips through the router, bitwise
// equality of batched/coalesced serving against direct ScoreItems calls
// across model families, hot-swap generation accounting, admission
// control, and the error paths (missing/mismatched checkpoints must
// surface as Status, never as a crash or a silently wrong model).
//
// Synchronization in these tests follows the DESIGN §9 rule: never a
// sleep — a blocked request is modelled by a GateRecommender that parks
// inside ScoreItems on a std::latch the test releases.

#include <gtest/gtest.h>

#include <cstdio>
#include <future>
#include <latch>
#include <memory>
#include <string>
#include <vector>

#include "cf/mf.h"
#include "core/recommender.h"
#include "core/registry.h"
#include "data/synthetic.h"
#include "math/topk.h"
#include "serve/router.h"
#include "serve/serve_handle.h"

namespace kgrec {
namespace {

using serve::Router;
using serve::RouterConfig;
using serve::RouterStats;
using serve::ScoreRequest;
using serve::ScoreResponse;
using serve::ServeHandle;

struct ServeWorld {
  SyntheticWorld world;
  DataSplit split;
  UserItemGraph ui_graph;

  ServeWorld() {
    WorldConfig config;
    config.num_users = 30;
    config.num_items = 40;
    config.avg_interactions_per_user = 8.0;
    config.item_relations = {{"genre", 5, 1, 0.9f}, {"studio", 8, 1, 0.7f}};
    config.seed = 414;
    world = GenerateWorld(config);
    Rng rng(11);
    split = RatioSplit(world.interactions, 0.25, rng);
    ui_graph = BuildUserItemGraph(world, split.train);
  }

  RecContext Context(uint64_t seed = 23) const {
    RecContext ctx;
    ctx.train = &split.train;
    ctx.item_kg = &world.item_kg;
    ctx.user_item_graph = &ui_graph;
    ctx.seed = seed;
    return ctx;
  }
};

ServeWorld& SharedWorld() {
  static ServeWorld* world = new ServeWorld();
  return *world;
}

std::string TempCheckpoint(const std::string& tag) {
  std::string file = tag;
  for (char& c : file) {
    if (c == '-' || c == ' ') c = '_';
  }
  return std::string(::testing::TempDir()) + "/serve_" + file + ".kgrc";
}

/// Fits `name` on the shared world, checkpoints it, and opens a handle
/// from the checkpoint. Returns the still-live fitted model through
/// `fitted` for bitwise comparisons.
std::shared_ptr<const ServeHandle> FitSaveOpen(
    const std::string& name, uint64_t generation,
    std::unique_ptr<Recommender>* fitted) {
  ServeWorld& w = SharedWorld();
  std::unique_ptr<Recommender> model = MakeRecommender(name);
  EXPECT_NE(model, nullptr) << name;
  model->Fit(w.Context());
  const std::string path = TempCheckpoint(name);
  EXPECT_TRUE(model->Save(path).ok()) << name;
  std::shared_ptr<const ServeHandle> handle;
  const Status opened =
      ServeHandle::Open(w.Context(), path, generation, &handle);
  EXPECT_TRUE(opened.ok()) << name << ": " << opened.ToString();
  std::remove(path.c_str());
  if (fitted != nullptr) *fitted = std::move(model);
  return handle;
}

// ---- ServeHandle ------------------------------------------------------

TEST(ServeHandle, OpenFromCheckpointServesBitwise) {
  std::unique_ptr<Recommender> fitted;
  std::shared_ptr<const ServeHandle> handle = FitSaveOpen("MF", 5, &fitted);
  ASSERT_NE(handle, nullptr);
  EXPECT_EQ(handle->model_name(), "MF");
  EXPECT_EQ(handle->generation(), 5u);
  EXPECT_EQ(handle->num_items(), 40);

  const std::vector<int32_t> items{0, 17, 39, 17, 3};
  for (int32_t user : {0, 12, 29}) {
    const std::vector<float> direct = fitted->ScoreItems(user, items);
    const std::vector<float> served = handle->ScoreItems(user, items);
    ASSERT_EQ(direct.size(), served.size());
    for (size_t i = 0; i < direct.size(); ++i) {
      EXPECT_EQ(served[i], direct[i]) << "user " << user << " slot " << i;
    }
    EXPECT_EQ(handle->Score(user, items[0]), fitted->Score(user, items[0]));
  }
}

TEST(ServeHandle, OpenMissingCheckpointReturnsStatus) {
  std::shared_ptr<const ServeHandle> handle;
  const Status status = ServeHandle::Open(
      SharedWorld().Context(), "/nonexistent/dir/model.kgrc", 1, &handle);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(handle, nullptr);
}

TEST(ServeHandle, OpenWrongHyperparametersReturnsStatus) {
  // A checkpoint written under non-registry hyper-parameters must be
  // refused by the serve path with FailedPrecondition, exactly like a
  // direct LoadModel — never served with garbage weights.
  ServeWorld& w = SharedWorld();
  MfConfig config;
  config.dim = 8;  // registry default is 16
  MfRecommender custom(config);
  custom.Fit(w.Context());
  const std::string path = TempCheckpoint("wrong_hypers");
  ASSERT_TRUE(custom.Save(path).ok());
  std::shared_ptr<const ServeHandle> handle;
  const Status status = ServeHandle::Open(w.Context(), path, 1, &handle);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(handle, nullptr);
  std::remove(path.c_str());
}

TEST(ServeHandle, OpenWithPrototypeServesCustomHyperparameters) {
  // The escape hatch for the test above: a caller-constructed prototype
  // with the matching config restores and serves the same checkpoint.
  ServeWorld& w = SharedWorld();
  MfConfig config;
  config.dim = 8;
  MfRecommender custom(config);
  custom.Fit(w.Context());
  const std::string path = TempCheckpoint("prototype");
  ASSERT_TRUE(custom.Save(path).ok());
  std::shared_ptr<const ServeHandle> handle;
  const Status status = ServeHandle::Open(
      w.Context(), path, std::make_unique<MfRecommender>(config), 3, &handle);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(handle->generation(), 3u);
  const std::vector<int32_t> items{0, 20, 39};
  EXPECT_EQ(handle->ScoreItems(8, items), custom.ScoreItems(8, items));
  std::remove(path.c_str());
}

TEST(ServeHandle, AdoptServesFittedModel) {
  ServeWorld& w = SharedWorld();
  std::unique_ptr<Recommender> model = MakeRecommender("BPR-MF");
  ASSERT_NE(model, nullptr);
  model->Fit(w.Context());
  const float expected = model->Score(4, 21);
  std::shared_ptr<const ServeHandle> handle =
      ServeHandle::Adopt(std::move(model), w.Context(), 1);
  EXPECT_EQ(handle->model_name(), "BPR-MF");
  EXPECT_EQ(handle->Score(4, 21), expected);
}

TEST(ServeHandle, RecommendMatchesScoreAllTopK) {
  std::unique_ptr<Recommender> fitted;
  std::shared_ptr<const ServeHandle> handle = FitSaveOpen("MF", 1, &fitted);
  const std::vector<float> all = fitted->ScoreAll(6, handle->num_items());
  const auto expected = TopKScored(all, 5);
  const auto got = handle->Recommend(6, 5);
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].first, expected[i].first) << "rank " << i;
    EXPECT_EQ(got[i].second, expected[i].second) << "rank " << i;
  }

  // Exclusion: the excluded items never appear, the rest keep their
  // relative order.
  const std::vector<int32_t> exclude{expected[0].first, expected[2].first};
  const auto filtered = handle->Recommend(6, 5, exclude);
  for (const auto& [item, score] : filtered) {
    EXPECT_NE(item, exclude[0]);
    EXPECT_NE(item, exclude[1]);
  }
  ASSERT_GE(filtered.size(), 2u);
  EXPECT_EQ(filtered[0].first, expected[1].first);
}

// ---- Router: round-trip and bitwise equality --------------------------

TEST(ServeRouter, RoundTripBitwise) {
  std::unique_ptr<Recommender> fitted;
  std::shared_ptr<const ServeHandle> handle =
      FitSaveOpen("RippleNet", 1, &fitted);
  RouterConfig config;
  config.num_threads = 2;
  Router router(config, handle);
  EXPECT_EQ(router.current()->generation(), 1u);

  const std::vector<int32_t> items{0, 9, 39, 9, 2};
  std::vector<std::future<ScoreResponse>> futures;
  const std::vector<int32_t> users{0, 7, 29, 7};
  futures.reserve(users.size());
  for (int32_t user : users) {
    futures.push_back(router.Submit({user, items}));
  }
  for (size_t r = 0; r < users.size(); ++r) {
    ScoreResponse response = futures[r].get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_EQ(response.generation, 1u);
    EXPECT_GE(response.completed_ns, response.submitted_ns);
    const std::vector<float> direct = fitted->ScoreItems(users[r], items);
    ASSERT_EQ(response.scores.size(), direct.size());
    for (size_t i = 0; i < direct.size(); ++i) {
      EXPECT_EQ(response.scores[i], direct[i])
          << "request " << r << " slot " << i;
    }
  }
  const RouterStats stats = router.Stats();
  EXPECT_EQ(stats.accepted, users.size());
  EXPECT_EQ(stats.responses, users.size());
  EXPECT_EQ(stats.rejected, 0u);
}

TEST(ServeRouter, BatchedVsDirectAcrossFamilies) {
  // One family per KG-usage column of the survey plus a CF baseline:
  // routed responses (including same-user coalescing) must be bitwise
  // what a direct ScoreItems call on the fitted model returns.
  const std::vector<std::string> families{"MF", "CKE", "KGCN", "KPRN",
                                          "RippleNet"};
  for (const std::string& name : families) {
    std::unique_ptr<Recommender> fitted;
    std::shared_ptr<const ServeHandle> handle = FitSaveOpen(name, 1, &fitted);
    RouterConfig config;
    config.num_threads = 2;
    Router router(config, handle);

    std::vector<std::vector<int32_t>> item_lists{
        {0, 5, 39}, {17, 17, 2, 30}, {8}, {3, 1, 4, 1, 5}};
    std::vector<int32_t> users{3, 3, 11, 28};  // two same-user requests
    std::vector<std::future<ScoreResponse>> futures;
    for (size_t r = 0; r < users.size(); ++r) {
      futures.push_back(router.Submit({users[r], item_lists[r]}));
    }
    for (size_t r = 0; r < users.size(); ++r) {
      ScoreResponse response = futures[r].get();
      ASSERT_TRUE(response.status.ok())
          << name << ": " << response.status.ToString();
      const std::vector<float> direct =
          fitted->ScoreItems(users[r], item_lists[r]);
      ASSERT_EQ(response.scores.size(), direct.size()) << name;
      for (size_t i = 0; i < direct.size(); ++i) {
        EXPECT_EQ(response.scores[i], direct[i])
            << name << " request " << r << " slot " << i;
      }
    }
  }
}

// ---- Router: hot swap -------------------------------------------------

TEST(ServeRouter, SwapFlipsGenerationAndModel) {
  ServeWorld& w = SharedWorld();
  // Two MF fits under different training seeds: genuinely different
  // parameters, same hyper-fingerprint.
  std::unique_ptr<Recommender> model_a = MakeRecommender("MF");
  model_a->Fit(w.Context(23));
  std::unique_ptr<Recommender> model_b = MakeRecommender("MF");
  model_b->Fit(w.Context(57));
  const std::vector<int32_t> items{1, 13, 37};
  const std::vector<float> expect_a = model_a->ScoreItems(9, items);
  const std::vector<float> expect_b = model_b->ScoreItems(9, items);
  ASSERT_NE(expect_a, expect_b) << "seeds should differentiate the fits";

  const std::string path_b = TempCheckpoint("swap_b");
  ASSERT_TRUE(model_b->Save(path_b).ok());

  Router router({}, ServeHandle::Adopt(std::move(model_a), w.Context(), 1));
  ScoreResponse before = router.ScoreSync({9, items});
  ASSERT_TRUE(before.status.ok());
  EXPECT_EQ(before.generation, 1u);
  EXPECT_EQ(before.scores, expect_a);

  const Status swapped = router.SwapFromCheckpoint(w.Context(57), path_b);
  ASSERT_TRUE(swapped.ok()) << swapped.ToString();
  EXPECT_EQ(router.current()->generation(), 2u);

  ScoreResponse after = router.ScoreSync({9, items});
  ASSERT_TRUE(after.status.ok());
  EXPECT_EQ(after.generation, 2u);
  EXPECT_EQ(after.scores, expect_b);
  EXPECT_EQ(router.Stats().swaps, 1u);
  std::remove(path_b.c_str());
}

TEST(ServeRouter, FailedSwapKeepsOldHandleServing) {
  std::unique_ptr<Recommender> fitted;
  std::shared_ptr<const ServeHandle> handle = FitSaveOpen("MF", 1, &fitted);
  Router router({}, handle);

  const Status bad = router.SwapFromCheckpoint(SharedWorld().Context(),
                                               "/nonexistent/model.kgrc");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(router.current()->generation(), 1u);
  EXPECT_EQ(router.Stats().swaps, 0u);

  const std::vector<int32_t> items{2, 4, 6};
  ScoreResponse response = router.ScoreSync({1, items});
  ASSERT_TRUE(response.status.ok());
  EXPECT_EQ(response.generation, 1u);
  EXPECT_EQ(response.scores, fitted->ScoreItems(1, items));
}

// ---- Router: admission control and lifecycle --------------------------

/// A stub whose first ScoreItems call parks on `release` after signalling
/// `entered`, turning "the pool is busy serving" into a deterministic
/// test state (DESIGN §9: latches, not sleeps).
class GateRecommender : public Recommender {
 public:
  GateRecommender(std::latch* entered, std::latch* release)
      : entered_(entered), release_(release) {}

  std::string name() const override { return "Gate"; }
  void Fit(const RecContext&) override {}
  float Score(int32_t user, int32_t item) const override {
    return static_cast<float>(user * 1000 + item);
  }
  std::vector<float> ScoreItems(
      int32_t user, std::span<const int32_t> items) const override {
    entered_->count_down();
    release_->wait();  // no-op once the latch has been opened
    return Recommender::ScoreItems(user, items);
  }

 private:
  std::latch* entered_;
  std::latch* release_;
};

TEST(ServeRouter, AdmissionQueueRejectsWhenFull) {
  ServeWorld& w = SharedWorld();
  std::latch entered(1);
  std::latch release(1);
  auto gate = std::make_unique<GateRecommender>(&entered, &release);
  RouterConfig config;
  config.num_threads = 1;  // single worker: the gate blocks the pool
  config.max_queue = 3;
  Router router(config, ServeHandle::Adopt(std::move(gate), w.Context(), 1));

  // First request: drained immediately, then parks inside ScoreItems.
  std::vector<std::future<ScoreResponse>> futures;
  futures.push_back(router.Submit({0, {1, 2}}));
  entered.wait();

  // The worker is parked, so these stack up in the admission queue...
  for (int32_t r = 0; r < 3; ++r) {
    futures.push_back(router.Submit({r + 1, {3}}));
  }
  // ...and the queue is now full: the next request is refused instantly.
  ScoreResponse rejected = router.Submit({9, {4}}).get();
  EXPECT_EQ(rejected.status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(rejected.scores.empty());

  release.count_down();
  for (size_t r = 0; r < futures.size(); ++r) {
    ScoreResponse response = futures[r].get();
    EXPECT_TRUE(response.status.ok()) << "request " << r;
  }
  const RouterStats stats = router.Stats();
  EXPECT_EQ(stats.accepted, 4u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.responses, 4u);
}

TEST(ServeRouter, CoalescesSameUserRequests) {
  ServeWorld& w = SharedWorld();
  std::latch entered(1);
  std::latch release(1);
  auto gate = std::make_unique<GateRecommender>(&entered, &release);
  RouterConfig config;
  config.num_threads = 1;
  Router router(config, ServeHandle::Adopt(std::move(gate), w.Context(), 1));

  // Park the worker, then queue three same-user requests plus one other:
  // the next drain must steal all four at once and coalesce user 7's
  // three requests into a single ScoreItems dispatch.
  std::vector<std::future<ScoreResponse>> futures;
  futures.push_back(router.Submit({0, {1}}));
  entered.wait();
  futures.push_back(router.Submit({7, {10, 11}}));
  futures.push_back(router.Submit({7, {12}}));
  futures.push_back(router.Submit({7, {13, 14, 15}}));
  futures.push_back(router.Submit({5, {20}}));
  release.count_down();

  for (auto& future : futures) {
    ScoreResponse response = future.get();
    ASSERT_TRUE(response.status.ok());
    // The gate scores user*1000 + item: coalescing must not leak one
    // request's items into another's response.
    EXPECT_FALSE(response.scores.empty());
  }
  const RouterStats stats = router.Stats();
  EXPECT_EQ(stats.accepted, 5u);
  EXPECT_EQ(stats.responses, 5u);
  // Batches: gate request (1) + user 7 (1, coalescing 3 requests) +
  // user 5 (1) = 3; two of user 7's requests were merged away.
  EXPECT_EQ(stats.batches, 3u);
  EXPECT_EQ(stats.coalesced, 2u);
}

TEST(ServeRouter, SplitsCoalescedResponsesCorrectly) {
  // Same shape as above, but against a real model so the split points of
  // the concatenated ScoreItems result are checked bitwise.
  std::unique_ptr<Recommender> fitted;
  std::shared_ptr<const ServeHandle> handle = FitSaveOpen("CKE", 1, &fitted);
  RouterConfig config;
  config.num_threads = 1;
  Router router(config, handle);

  const std::vector<std::vector<int32_t>> lists{{10, 11}, {12}, {13, 14, 15}};
  std::vector<std::future<ScoreResponse>> futures;
  futures.reserve(lists.size());
  for (const auto& list : lists) {
    futures.push_back(router.Submit({7, list}));
  }
  for (size_t r = 0; r < lists.size(); ++r) {
    ScoreResponse response = futures[r].get();
    ASSERT_TRUE(response.status.ok());
    const std::vector<float> direct = fitted->ScoreItems(7, lists[r]);
    ASSERT_EQ(response.scores.size(), direct.size());
    for (size_t i = 0; i < direct.size(); ++i) {
      EXPECT_EQ(response.scores[i], direct[i])
          << "request " << r << " slot " << i;
    }
  }
}

TEST(ServeRouter, DestructorDeliversEveryAdmittedRequest) {
  std::unique_ptr<Recommender> fitted;
  std::shared_ptr<const ServeHandle> handle = FitSaveOpen("MF", 1, &fitted);
  std::vector<std::future<ScoreResponse>> futures;
  {
    RouterConfig config;
    config.num_threads = 2;
    Router router(config, handle);
    futures.reserve(16);
    for (int32_t r = 0; r < 16; ++r) {
      futures.push_back(router.Submit({r % 30, {0, 1, 2}}));
    }
    // Router destroyed with requests possibly still in flight.
  }
  for (auto& future : futures) {
    ASSERT_TRUE(future.valid());
    ScoreResponse response = future.get();  // must not hang or throw
    EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  }
}

}  // namespace
}  // namespace kgrec
