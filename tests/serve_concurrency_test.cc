// Concurrency lockdown of the serving layer, run under ThreadSanitizer
// in CI (ctest label `tsan`, see tests/CMakeLists.txt):
//
//  * N concurrent clients scoring through one immutable ServeHandle —
//    the const-audited serve path must be mutation-free, so TSan sees no
//    writes at all on shared model state;
//  * clients hammering a Router while another thread performs repeated
//    hot swaps — no response may be lost or duplicated, and every
//    response must be consistent with exactly one checkpoint generation
//    (a torn response mixing two generations fails the bitwise check);
//  * the swap drain protocol — when Swap() returns, every response
//    served by the old generation has already been delivered.
//
// Synchronization rule (DESIGN §9): no sleeps — thread phasing uses
// std::latch and future readiness only, so the tests cannot go flaky on
// a loaded or single-core machine.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <latch>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/recommender.h"
#include "core/registry.h"
#include "data/synthetic.h"
#include "serve/router.h"
#include "serve/serve_handle.h"

namespace kgrec {
namespace {

using serve::Router;
using serve::RouterConfig;
using serve::RouterStats;
using serve::ScoreResponse;
using serve::ServeHandle;

struct ServeWorld {
  SyntheticWorld world;
  DataSplit split;
  UserItemGraph ui_graph;

  ServeWorld() {
    WorldConfig config;
    config.num_users = 30;
    config.num_items = 40;
    config.avg_interactions_per_user = 8.0;
    config.item_relations = {{"genre", 5, 1, 0.9f}, {"studio", 8, 1, 0.7f}};
    config.seed = 515;
    world = GenerateWorld(config);
    Rng rng(12);
    split = RatioSplit(world.interactions, 0.25, rng);
    ui_graph = BuildUserItemGraph(world, split.train);
  }

  RecContext Context(uint64_t seed = 23) const {
    RecContext ctx;
    ctx.train = &split.train;
    ctx.item_kg = &world.item_kg;
    ctx.user_item_graph = &ui_graph;
    ctx.seed = seed;
    return ctx;
  }
};

ServeWorld& SharedWorld() {
  static ServeWorld* world = new ServeWorld();
  return *world;
}

std::string TempCheckpoint(const std::string& tag) {
  return std::string(::testing::TempDir()) + "/serve_conc_" + tag + ".kgrc";
}

// ---- Concurrent clients against one immutable handle ------------------

TEST(ServeConcurrency, ConcurrentScoreItemsOneHandlePerFamily) {
  // One representative per family: CF baseline, KG-embedding, GNN
  // aggregation, preference propagation. Each hoists different per-user
  // state in its ScoreItems override; all of it must be call-local.
  const std::vector<std::string> families{"MF", "CKE", "KGCN", "RippleNet"};
  const std::vector<std::vector<int32_t>> patterns{
      {0, 17, 39, 17}, {5, 6, 7}, {39, 0}, {12, 24, 36, 1, 2}};
  constexpr int kClients = 4;
  constexpr int kRounds = 8;

  ServeWorld& w = SharedWorld();
  for (const std::string& name : families) {
    std::unique_ptr<Recommender> model = MakeRecommender(name);
    ASSERT_NE(model, nullptr) << name;
    model->Fit(w.Context());

    // Expected scores, computed single-threaded before any concurrency.
    std::vector<std::vector<std::vector<float>>> expected(30);
    for (int32_t user = 0; user < 30; ++user) {
      for (const auto& pattern : patterns) {
        expected[user].push_back(model->ScoreItems(user, pattern));
      }
    }

    std::shared_ptr<const ServeHandle> handle =
        ServeHandle::Adopt(std::move(model), w.Context(), 1);
    std::latch go(1);
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int t = 0; t < kClients; ++t) {
      clients.emplace_back([&, t] {
        go.wait();
        for (int round = 0; round < kRounds; ++round) {
          const int32_t user = (t * 11 + round * 7) % 30;
          const size_t p = static_cast<size_t>(t + round) % patterns.size();
          const std::vector<float> got =
              handle->ScoreItems(user, patterns[p]);
          ASSERT_EQ(got.size(), expected[user][p].size()) << name;
          for (size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i], expected[user][p][i])
                << name << " user " << user << " pattern " << p << " slot "
                << i;
          }
        }
      });
    }
    go.count_down();
    for (std::thread& client : clients) client.join();
  }
}

// ---- Router under hot-swap churn --------------------------------------

TEST(ServeConcurrency, RouterServesUnderHotSwapChurn) {
  ServeWorld& w = SharedWorld();
  // Two MF fits under different seeds — odd generations serve A, even
  // generations serve B, and the two produce different floats, so a
  // response's scores identify its generation's model exactly.
  std::unique_ptr<Recommender> model_a = MakeRecommender("MF");
  model_a->Fit(w.Context(23));
  std::unique_ptr<Recommender> model_b = MakeRecommender("MF");
  model_b->Fit(w.Context(57));

  const std::vector<std::vector<int32_t>> patterns{
      {0, 17, 39, 17}, {5, 6, 7}, {12, 24, 36, 1, 2}};
  std::vector<std::vector<std::vector<float>>> expect_a(30), expect_b(30);
  for (int32_t user = 0; user < 30; ++user) {
    for (const auto& pattern : patterns) {
      expect_a[user].push_back(model_a->ScoreItems(user, pattern));
      expect_b[user].push_back(model_b->ScoreItems(user, pattern));
    }
  }
  ASSERT_NE(expect_a[0][0], expect_b[0][0])
      << "seeds should differentiate the fits";

  const std::string path_a = TempCheckpoint("churn_a");
  const std::string path_b = TempCheckpoint("churn_b");
  ASSERT_TRUE(model_a->Save(path_a).ok());
  ASSERT_TRUE(model_b->Save(path_b).ok());

  constexpr int kClients = 3;
  constexpr int kRequestsPerClient = 20;
  constexpr int kSwaps = 5;

  RouterConfig config;
  config.num_threads = 2;
  Router router(config, ServeHandle::Adopt(std::move(model_a), w.Context(), 1));

  struct Issued {
    int32_t user;
    size_t pattern;
    std::future<ScoreResponse> future;
  };
  std::vector<std::vector<Issued>> issued(kClients);
  std::latch go(1);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      go.wait();
      issued[t].reserve(kRequestsPerClient);
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const int32_t user = (t * 13 + r * 5) % 30;
        const size_t p = static_cast<size_t>(t + r) % patterns.size();
        Issued record;
        record.user = user;
        record.pattern = p;
        record.future = router.Submit({user, patterns[p]});
        issued[t].push_back(std::move(record));
      }
    });
  }
  // Swapper: alternate B, A, B, ... from checkpoints, mid-traffic. Each
  // SwapFromCheckpoint loads on this thread, flips, and drains the old
  // generation before the next iteration.
  std::thread swapper([&] {
    go.wait();
    for (int s = 0; s < kSwaps; ++s) {
      const bool to_b = (s % 2 == 0);  // generations 2,4 = B; 3,5 = A
      const Status swapped = router.SwapFromCheckpoint(
          w.Context(to_b ? 57 : 23), to_b ? path_b : path_a);
      EXPECT_TRUE(swapped.ok()) << "swap " << s << ": " << swapped.ToString();
    }
  });
  go.count_down();
  for (std::thread& client : clients) client.join();
  swapper.join();

  // Every submitted request produced exactly one response (futures are
  // single-shot, so duplication is structurally impossible; readiness of
  // all of them rules out loss), and each response's scores are bitwise
  // the output of exactly one generation's model.
  size_t delivered = 0;
  for (int t = 0; t < kClients; ++t) {
    for (Issued& record : issued[t]) {
      ASSERT_TRUE(record.future.valid());
      ScoreResponse response = record.future.get();
      ASSERT_TRUE(response.status.ok()) << response.status.ToString();
      ++delivered;
      ASSERT_GE(response.generation, 1u);
      ASSERT_LE(response.generation, 1u + kSwaps);
      const auto& expect =
          (response.generation % 2 == 1) ? expect_a : expect_b;
      const std::vector<float>& want = expect[record.user][record.pattern];
      ASSERT_EQ(response.scores.size(), want.size());
      for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(response.scores[i], want[i])
            << "generation " << response.generation << " user "
            << record.user << " pattern " << record.pattern << " slot " << i;
      }
    }
  }
  EXPECT_EQ(delivered, static_cast<size_t>(kClients * kRequestsPerClient));

  const RouterStats stats = router.Stats();
  EXPECT_EQ(stats.accepted, delivered);
  EXPECT_EQ(stats.responses, delivered);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.swaps, static_cast<uint64_t>(kSwaps));
  EXPECT_EQ(router.current()->generation(), 1u + kSwaps);
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

// ---- Swap drain protocol ----------------------------------------------

/// Parks inside ScoreItems on `release` after signalling `entered`
/// (same latch pattern as serve_test.cc).
class GateRecommender : public Recommender {
 public:
  GateRecommender(std::latch* entered, std::latch* release)
      : entered_(entered), release_(release) {}

  std::string name() const override { return "Gate"; }
  void Fit(const RecContext&) override {}
  float Score(int32_t user, int32_t item) const override {
    return static_cast<float>(user * 1000 + item);
  }
  std::vector<float> ScoreItems(
      int32_t user, std::span<const int32_t> items) const override {
    entered_->count_down();
    release_->wait();
    return Recommender::ScoreItems(user, items);
  }

 private:
  std::latch* entered_;
  std::latch* release_;
};

TEST(ServeConcurrency, SwapDrainsInFlightResponsesBeforeReturning) {
  ServeWorld& w = SharedWorld();
  std::latch entered(1);
  std::latch release(1);
  auto gate = std::make_unique<GateRecommender>(&entered, &release);
  RouterConfig config;
  config.num_threads = 1;
  Router router(config, ServeHandle::Adopt(std::move(gate), w.Context(), 1));

  std::unique_ptr<Recommender> fresh = MakeRecommender("Popularity");
  fresh->Fit(w.Context());
  std::shared_ptr<const ServeHandle> next =
      ServeHandle::Adopt(std::move(fresh), w.Context(), 2);

  // Request 1 is dispatched on generation 1 and parks inside ScoreItems.
  std::future<ScoreResponse> parked = router.Submit({3, {1, 2}});
  entered.wait();

  std::latch swap_started(1);
  std::atomic<bool> delivered_at_swap_return{false};
  std::thread swapper([&] {
    swap_started.count_down();
    const Status swapped = router.Swap(next);
    EXPECT_TRUE(swapped.ok()) << swapped.ToString();
    // The drain contract: by the time Swap() returns, the old
    // generation's in-flight response has been delivered.
    delivered_at_swap_return.store(
        parked.wait_for(std::chrono::seconds(0)) ==
        std::future_status::ready);
  });
  swap_started.wait();
  release.count_down();  // un-park generation 1's batch
  swapper.join();

  EXPECT_TRUE(delivered_at_swap_return.load());
  ScoreResponse old_response = parked.get();
  ASSERT_TRUE(old_response.status.ok());
  EXPECT_EQ(old_response.generation, 1u);
  EXPECT_EQ(old_response.scores,
            (std::vector<float>{3001.0f, 3002.0f}));  // gate formula

  // New traffic lands on generation 2.
  ScoreResponse after = router.ScoreSync({3, {1, 2}});
  ASSERT_TRUE(after.status.ok());
  EXPECT_EQ(after.generation, 2u);
}

TEST(ServeConcurrency, StolenBatchHoldsDrainLeaseThroughGroupingWindow) {
  // Regression for a drain race: DrainLoop steals the queue under the
  // router lock, releases the lock to group requests by user, and only
  // then re-locks to register per-group leases. A swap landing in that
  // unlocked window must still observe the stolen batch as in-flight on
  // the old generation — the provisional lease registered at steal time
  // — or Swap() could return before the batch is served (and delivered)
  // on the old handle, violating the drain contract.
  ServeWorld& w = SharedWorld();
  std::unique_ptr<Recommender> model = MakeRecommender("Popularity");
  model->Fit(w.Context());
  RouterConfig config;
  config.num_threads = 1;
  Router router(config, ServeHandle::Adopt(std::move(model), w.Context(), 1));
  const ServeHandle* generation1 = router.current().get();

  std::atomic<int> window_hits{0};
  std::atomic<size_t> lease_in_window{0};
  router.SetPostStealHookForTest([&] {
    if (window_hits.fetch_add(1) == 0) {
      lease_in_window.store(router.InflightForTest(generation1));
    }
  });

  const ScoreResponse response = router.ScoreSync({3, {1, 2}});
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.generation, 1u);
  EXPECT_GE(window_hits.load(), 1);
  EXPECT_EQ(lease_in_window.load(), 1u)
      << "grouping window left the old generation drainable";
}

// ---- Accounting under overload -----------------------------------------

TEST(ServeConcurrency, NoLostOrDuplicatedResponsesUnderOverload) {
  ServeWorld& w = SharedWorld();
  std::unique_ptr<Recommender> model = MakeRecommender("MF");
  model->Fit(w.Context());
  const std::vector<int32_t> items{2, 4, 8, 16};
  std::vector<std::vector<float>> expected(30);
  for (int32_t user = 0; user < 30; ++user) {
    expected[user] = model->ScoreItems(user, items);
  }

  RouterConfig config;
  config.num_threads = 1;
  config.max_queue = 4;  // tiny: force admission rejections under load
  Router router(config, ServeHandle::Adopt(std::move(model), w.Context(), 1));

  constexpr int kClients = 3;
  constexpr int kRequestsPerClient = 30;
  std::vector<std::vector<std::pair<int32_t, std::future<ScoreResponse>>>>
      issued(kClients);
  std::latch go(1);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      go.wait();
      issued[t].reserve(kRequestsPerClient);
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const int32_t user = (t * 17 + r) % 30;
        issued[t].emplace_back(user, router.Submit({user, items}));
      }
    });
  }
  go.count_down();
  for (std::thread& client : clients) client.join();

  size_t ok_count = 0;
  size_t rejected_count = 0;
  for (int t = 0; t < kClients; ++t) {
    for (auto& [user, future] : issued[t]) {
      ASSERT_TRUE(future.valid());
      ScoreResponse response = future.get();
      if (response.status.ok()) {
        ++ok_count;
        ASSERT_EQ(response.scores.size(), items.size());
        for (size_t i = 0; i < items.size(); ++i) {
          EXPECT_EQ(response.scores[i], expected[user][i]);
        }
      } else {
        ++rejected_count;
        EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
        EXPECT_TRUE(response.scores.empty());
      }
    }
  }
  EXPECT_EQ(ok_count + rejected_count,
            static_cast<size_t>(kClients * kRequestsPerClient));
  const RouterStats stats = router.Stats();
  EXPECT_EQ(stats.accepted, ok_count);
  EXPECT_EQ(stats.rejected, rejected_count);
  EXPECT_EQ(stats.responses, ok_count);
}

}  // namespace
}  // namespace kgrec
