// Tests of the method registry against the survey's Table 3.

#include <gtest/gtest.h>

#include "core/registry.h"

namespace kgrec {
namespace {

TEST(Registry, Table3RowCountsMatchTheSurvey) {
  size_t embedding = 0, path = 0, unified = 0, baselines = 0;
  for (const MethodInfo& info : AllMethods()) {
    switch (info.usage) {
      case UsageType::kEmbedding:
        ++embedding;
        break;
      case UsageType::kPath:
        ++path;
        break;
      case UsageType::kUnified:
        ++unified;
        break;
      case UsageType::kNone:
        ++baselines;
        break;
    }
  }
  // Survey Table 3: 14 embedding-based, 15 path-based, 10 unified rows.
  EXPECT_EQ(embedding, 14u);
  EXPECT_EQ(path, 15u);
  EXPECT_EQ(unified, 10u);
  EXPECT_EQ(baselines, 6u);  // our non-KG baselines
}

TEST(Registry, EveryImplementedMethodConstructsWithMatchingName) {
  size_t implemented = 0;
  for (const MethodInfo& info : AllMethods()) {
    if (!info.implemented) continue;
    ++implemented;
    auto model = MakeRecommender(info.name);
    ASSERT_NE(model, nullptr) << info.name;
    EXPECT_EQ(model->name(), info.name);
  }
  EXPECT_GE(implemented, 38u);
  EXPECT_EQ(ImplementedMethodNames().size(), implemented);
}

TEST(Registry, UnknownAndUnimplementedReturnNull) {
  EXPECT_EQ(MakeRecommender("NoSuchModel"), nullptr);
  EXPECT_EQ(MakeRecommender("AKGE"), nullptr);  // catalogued, not built
}

TEST(Registry, TechniqueFlagsFollowTable3) {
  for (const MethodInfo& info : AllMethods()) {
    if (info.name == "DKN") {
      EXPECT_TRUE(info.uses_cnn);
      EXPECT_TRUE(info.uses_attention);
    }
    if (info.name == "KPRN") {
      EXPECT_TRUE(info.uses_rnn);
    }
    if (info.name == "PGPR") {
      EXPECT_TRUE(info.uses_rl);
    }
    if (info.name == "KGAT") {
      EXPECT_TRUE(info.uses_gnn);
      EXPECT_TRUE(info.uses_attention);
    }
    if (info.name == "KTGAN") {
      EXPECT_TRUE(info.uses_gan);
    }
    if (info.name == "CKE") {
      EXPECT_TRUE(info.uses_autoencoder);
    }
    if (info.name == "FMG") {
      EXPECT_TRUE(info.uses_mf);
    }
  }
}

TEST(Registry, UsageTypeNames) {
  EXPECT_STREQ(UsageTypeName(UsageType::kEmbedding), "Emb.");
  EXPECT_STREQ(UsageTypeName(UsageType::kPath), "Path");
  EXPECT_STREQ(UsageTypeName(UsageType::kUnified), "Uni.");
}

}  // namespace
}  // namespace kgrec
