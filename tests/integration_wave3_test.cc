// End-to-end training of the third wave of surveyed methods:
// SED, ProPPR, DKFM, ECFKG (with its KGE-ranked explanations).

#include <gtest/gtest.h>

#include "core/recommender.h"
#include "data/synthetic.h"
#include "embed/dkfm.h"
#include "embed/ecfkg.h"
#include "embed/sed.h"
#include "eval/protocol.h"
#include "embed/ktgan.h"
#include "path/ekar.h"
#include "path/herec.h"
#include "path/mcrec.h"
#include "path/proppr.h"

namespace kgrec {
namespace {

struct Fixture {
  SyntheticWorld world;
  DataSplit split;
  UserItemGraph ui_graph;

  Fixture() {
    WorldConfig config;
    config.num_users = 150;
    config.num_items = 250;
    config.avg_interactions_per_user = 16.0;
    config.item_relations = {{"genre", 10, 1, 0.9f}, {"studio", 25, 1, 0.7f}};
    config.seed = 123;
    world = GenerateWorld(config);
    Rng rng(12);
    split = RatioSplit(world.interactions, 0.2, rng);
    ui_graph = BuildUserItemGraph(world, split.train);
  }
};

Fixture& SharedFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

double TrainAndAuc(Recommender& model) {
  Fixture& f = SharedFixture();
  RecContext ctx;
  ctx.train = &f.split.train;
  ctx.item_kg = &f.world.item_kg;
  ctx.user_item_graph = &f.ui_graph;
  ctx.seed = 41;
  model.Fit(ctx);
  Rng rng(321);
  return EvaluateCtr(model, f.split.train, f.split.test, rng).auc;
}

TEST(IntegrationWave3, SedBeatsChanceWithoutTraining) {
  SedRecommender model;
  EXPECT_GT(TrainAndAuc(model), 0.55);
}

TEST(IntegrationWave3, ProPprLearns) {
  ProPprRecommender model;
  EXPECT_GT(TrainAndAuc(model), 0.65);
}

TEST(IntegrationWave3, DkfmLearns) {
  DkfmRecommender model;
  EXPECT_GT(TrainAndAuc(model), 0.65);
}

TEST(IntegrationWave3, EcfkgLearnsAndExplains) {
  EcfkgRecommender model;
  EXPECT_GT(TrainAndAuc(model), 0.6);
  // Some pair must be explainable with a KGE-ranked path.
  Fixture& f = SharedFixture();
  bool explained = false;
  for (int32_t u = 0; u < 20 && !explained; ++u) {
    for (int32_t i = 0; i < f.split.train.num_items(); ++i) {
      const std::string path = model.Explain(u, i);
      if (!path.empty()) {
        EXPECT_NE(path.find("-["), std::string::npos);
        explained = true;
        break;
      }
    }
  }
  EXPECT_TRUE(explained);
}

TEST(IntegrationWave3, McRecLearns) {
  McRecConfig config;
  config.epochs = 4;
  McRecRecommender model(config);
  EXPECT_GT(TrainAndAuc(model), 0.6);
}

TEST(IntegrationWave3, HERecLearns) {
  HERecRecommender model;
  EXPECT_GT(TrainAndAuc(model), 0.65);
}

TEST(IntegrationWave3, KtganLearns) {
  KtganRecommender model;
  EXPECT_GT(TrainAndAuc(model), 0.6);
}

TEST(IntegrationWave3, EkarLearns) {
  EkarRecommender model;
  EXPECT_GT(TrainAndAuc(model), 0.58);
}

}  // namespace
}  // namespace kgrec
