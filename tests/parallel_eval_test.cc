// Determinism lockdown of the parallel evaluation harness: for one model
// per family (CF / embedding / path / unified), EvaluateCtr and
// EvaluateTopK must produce **bitwise identical** metrics at 1, 2 and 8
// threads — the per-user counter-based RNG streams (Rng::Fork) make the
// sampled negatives independent of thread count and work order.
//
// This suite (plus thread_pool_test) is the one the CI matrix re-runs
// under ThreadSanitizer (-DKGREC_SANITIZE=thread).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/recommender.h"
#include "core/registry.h"
#include "data/synthetic.h"
#include "eval/protocol.h"

namespace kgrec {
namespace {

struct Fixture {
  SyntheticWorld world;
  DataSplit split;
  UserItemGraph ui_graph;

  Fixture() {
    WorldConfig config;
    config.num_users = 80;
    config.num_items = 120;
    config.avg_interactions_per_user = 12.0;
    config.item_relations = {{"genre", 8, 1, 0.9f}, {"studio", 15, 1, 0.7f}};
    config.seed = 77;
    world = GenerateWorld(config);
    Rng rng(11);
    split = RatioSplit(world.interactions, 0.25, rng);
    ui_graph = BuildUserItemGraph(world, split.train);
  }

  RecContext Context() const {
    RecContext ctx;
    ctx.train = &split.train;
    ctx.item_kg = &world.item_kg;
    ctx.user_item_graph = &ui_graph;
    ctx.seed = 29;
    return ctx;
  }
};

Fixture& SharedFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

/// One representative per survey family. All four must hold the bitwise
/// contract; model internals differ wildly (dense MF, autodiff graphs,
/// path enumeration, ripple propagation), so together they exercise
/// Score() under concurrency across the whole zoo's substrate.
const char* kFamilyRepresentatives[] = {
    "BPR-MF",     // CF baseline
    "CKE",        // embedding-based
    "Hete-MF",    // path-based
    "RippleNet",  // unified
};

class ParallelEval : public ::testing::TestWithParam<const char*> {};

void ExpectBitwiseEqualCtr(const CtrMetrics& a, const CtrMetrics& b) {
  EXPECT_EQ(a.auc, b.auc);
  EXPECT_EQ(a.accuracy, b.accuracy);
  EXPECT_EQ(a.f1, b.f1);
  EXPECT_EQ(a.num_pairs, b.num_pairs);
}

void ExpectBitwiseEqualTopK(const TopKMetrics& a, const TopKMetrics& b) {
  EXPECT_EQ(a.precision, b.precision);
  EXPECT_EQ(a.recall, b.recall);
  EXPECT_EQ(a.hit_rate, b.hit_rate);
  EXPECT_EQ(a.ndcg, b.ndcg);
  EXPECT_EQ(a.mrr, b.mrr);
  EXPECT_EQ(a.num_users, b.num_users);
}

TEST_P(ParallelEval, MetricsBitwiseIdenticalAcrossThreadCounts) {
  Fixture& f = SharedFixture();
  std::unique_ptr<Recommender> model = MakeRecommender(GetParam());
  ASSERT_NE(model, nullptr);
  model->Fit(f.Context());

  EvalOptions serial;
  serial.num_threads = 1;
  serial.num_negatives = 40;
  serial.k = 10;
  serial.seed = 4242;
  const CtrMetrics ctr_ref =
      EvaluateCtr(*model, f.split.train, f.split.test, serial);
  const TopKMetrics topk_ref =
      EvaluateTopK(*model, f.split.train, f.split.test, serial);
  EXPECT_GT(ctr_ref.num_pairs, 0u);
  EXPECT_GT(topk_ref.num_users, 0u);

  for (size_t threads : {2u, 8u}) {
    EvalOptions parallel = serial;
    parallel.num_threads = threads;
    ExpectBitwiseEqualCtr(
        EvaluateCtr(*model, f.split.train, f.split.test, parallel), ctr_ref);
    ExpectBitwiseEqualTopK(
        EvaluateTopK(*model, f.split.train, f.split.test, parallel),
        topk_ref);
  }
}

INSTANTIATE_TEST_SUITE_P(FamilyRepresentatives, ParallelEval,
                         ::testing::ValuesIn(kFamilyRepresentatives),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(ParallelEvalProtocol, RepeatedRunsAreIdentical) {
  // Same seed, same thread count -> same metrics run to run (the pool
  // introduces no hidden state).
  Fixture& f = SharedFixture();
  std::unique_ptr<Recommender> model = MakeRecommender("BPR-MF");
  model->Fit(f.Context());
  EvalOptions options;
  options.num_threads = 4;
  options.seed = 99;
  const TopKMetrics first =
      EvaluateTopK(*model, f.split.train, f.split.test, options);
  const TopKMetrics second =
      EvaluateTopK(*model, f.split.train, f.split.test, options);
  ExpectBitwiseEqualTopK(first, second);
}

TEST(ParallelEvalProtocol, DifferentSeedsChangeSampledNegatives) {
  // Sanity that the seed actually matters (the contract is "identical
  // across threads", not "identical across seeds").
  Fixture& f = SharedFixture();
  std::unique_ptr<Recommender> model = MakeRecommender("BPR-MF");
  model->Fit(f.Context());
  EvalOptions a;
  a.seed = 1;
  EvalOptions b;
  b.seed = 2;
  const CtrMetrics ma = EvaluateCtr(*model, f.split.train, f.split.test, a);
  const CtrMetrics mb = EvaluateCtr(*model, f.split.train, f.split.test, b);
  EXPECT_NE(ma.auc, mb.auc);
}

TEST(ParallelEvalProtocol, LegacyRngOverloadMatchesOptionsOverload) {
  Fixture& f = SharedFixture();
  std::unique_ptr<Recommender> model = MakeRecommender("BPR-MF");
  model->Fit(f.Context());
  Rng rng(55);
  EvalOptions options;
  options.seed = Rng(55).NextUint64();  // the wrapper's derivation
  ExpectBitwiseEqualCtr(
      EvaluateCtr(*model, f.split.train, f.split.test, rng),
      EvaluateCtr(*model, f.split.train, f.split.test, options));
}

TEST(ParallelEvalProtocol, EmptyTestSetStaysEmptyAtAnyThreadCount) {
  Fixture& f = SharedFixture();
  std::unique_ptr<Recommender> model = MakeRecommender("Popularity");
  model->Fit(f.Context());
  InteractionDataset empty(f.split.train.num_users(),
                           f.split.train.num_items());
  for (size_t threads : {1u, 8u}) {
    EvalOptions options;
    options.num_threads = threads;
    const CtrMetrics ctr =
        EvaluateCtr(*model, f.split.train, empty, options);
    EXPECT_EQ(ctr.num_pairs, 0u);
    const TopKMetrics topk =
        EvaluateTopK(*model, f.split.train, empty, options);
    EXPECT_EQ(topk.num_users, 0u);
  }
}

}  // namespace
}  // namespace kgrec
