// Unit and property tests for the data substrate: interaction datasets,
// splits, negative sampling, the synthetic world generator and presets.

#include <gtest/gtest.h>

#include <unordered_set>

#include "data/interactions.h"
#include "data/presets.h"
#include "data/synthetic.h"

namespace kgrec {
namespace {

InteractionDataset SmallDataset() {
  InteractionDataset data(4, 6);
  data.Add(0, 0);
  data.Add(0, 1);
  data.Add(0, 2);
  data.Add(1, 2);
  data.Add(1, 3);
  data.Add(2, 4);
  data.Add(3, 0);
  data.Add(3, 5);
  data.Add(3, 1);
  return data;
}

TEST(Interactions, BasicAccessors) {
  InteractionDataset data = SmallDataset();
  EXPECT_EQ(data.num_users(), 4);
  EXPECT_EQ(data.num_items(), 6);
  EXPECT_EQ(data.num_interactions(), 9u);
  EXPECT_TRUE(data.Contains(0, 1));
  EXPECT_FALSE(data.Contains(0, 5));
  EXPECT_EQ(data.UserItems(2).size(), 1u);
  EXPECT_NEAR(data.Density(), 9.0 / 24.0, 1e-9);
  EXPECT_EQ(data.ItemsWithInteractions().size(), 6u);
}

TEST(Interactions, UserItemsPreservesInsertionOrder) {
  // The flat CSR user index is built by a stable counting sort, so each
  // user's span must read back in exact insertion order (E_u^0 order
  // matters to the ripple-set seeds and the KGE trainers' negatives).
  InteractionDataset data = SmallDataset();
  const std::vector<int32_t> u0(data.UserItems(0).begin(),
                                data.UserItems(0).end());
  EXPECT_EQ(u0, (std::vector<int32_t>{0, 1, 2}));
  const std::vector<int32_t> u3(data.UserItems(3).begin(),
                                data.UserItems(3).end());
  EXPECT_EQ(u3, (std::vector<int32_t>{0, 5, 1}));
}

TEST(Interactions, UserItemsIndexRebuildsAfterAdd) {
  // Add() invalidates the lazy index; the next UserItems() call must
  // rebuild and serve the new event, in order.
  InteractionDataset data(3, 8);
  data.Add(1, 4);
  EXPECT_EQ(data.UserItems(1).size(), 1u);  // forces the first build
  EXPECT_TRUE(data.UserItems(0).empty());
  data.Add(1, 7);
  data.Add(0, 2);
  const std::vector<int32_t> u1(data.UserItems(1).begin(),
                                data.UserItems(1).end());
  EXPECT_EQ(u1, (std::vector<int32_t>{4, 7}));
  EXPECT_EQ(data.UserItems(0).size(), 1u);
  EXPECT_EQ(data.UserItems(0)[0], 2);
  EXPECT_TRUE(data.UserItems(2).empty());  // trailing user, no events
}

TEST(Interactions, MemoryUseTotalIsSumOfEntries) {
  InteractionDataset data = SmallDataset();
  (void)data.UserItems(0);  // materialize the index so it is counted
  MemoryVisitor visitor;
  data.MemoryUse(visitor);
  EXPECT_FALSE(visitor.entries().empty());
  size_t sum = 0;
  for (const auto& [name, bytes] : visitor.entries()) sum += bytes;
  EXPECT_EQ(visitor.total(), sum);
  EXPECT_GT(visitor.total(), 0u);
}

TEST(Interactions, ToCsrMatchesContains) {
  InteractionDataset data = SmallDataset();
  CsrMatrix r = data.ToCsr();
  EXPECT_EQ(r.rows(), 4u);
  EXPECT_EQ(r.cols(), 6u);
  for (int32_t u = 0; u < 4; ++u) {
    for (int32_t i = 0; i < 6; ++i) {
      EXPECT_EQ(r.At(u, i) > 0.0f, data.Contains(u, i));
    }
  }
}

class RatioSplitParamTest : public ::testing::TestWithParam<double> {};

TEST_P(RatioSplitParamTest, DisjointAndComplete) {
  InteractionDataset data = SmallDataset();
  Rng rng(10);
  DataSplit split = RatioSplit(data, GetParam(), rng);
  EXPECT_EQ(split.train.num_interactions() + split.test.num_interactions(),
            data.num_interactions());
  for (const Interaction& x : split.test.interactions()) {
    EXPECT_FALSE(split.train.Contains(x.user, x.item));
    EXPECT_TRUE(data.Contains(x.user, x.item));
  }
  // Every user with interactions keeps at least one training interaction.
  for (int32_t u = 0; u < data.num_users(); ++u) {
    if (!data.UserItems(u).empty()) {
      EXPECT_FALSE(split.train.UserItems(u).empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Fractions, RatioSplitParamTest,
                         ::testing::Values(0.0, 0.2, 0.5, 0.9));

TEST(Splits, LeaveOneOutHoldsExactlyOne) {
  InteractionDataset data = SmallDataset();
  Rng rng(11);
  DataSplit split = LeaveOneOutSplit(data, rng);
  for (int32_t u = 0; u < data.num_users(); ++u) {
    const size_t total = data.UserItems(u).size();
    if (total >= 2) {
      EXPECT_EQ(split.test.UserItems(u).size(), 1u);
      EXPECT_EQ(split.train.UserItems(u).size(), total - 1);
    } else {
      EXPECT_TRUE(split.test.UserItems(u).empty());
    }
  }
}

TEST(Splits, ColdItemSplitRemovesItemsFromTrain) {
  InteractionDataset data = SmallDataset();
  Rng rng(12);
  DataSplit split = ColdItemSplit(data, 0.3, rng);
  std::unordered_set<int32_t> cold_items;
  for (const Interaction& x : split.test.interactions()) {
    cold_items.insert(x.item);
  }
  EXPECT_FALSE(cold_items.empty());
  for (const Interaction& x : split.train.interactions()) {
    EXPECT_EQ(cold_items.count(x.item), 0u);
  }
  EXPECT_EQ(split.train.num_interactions() + split.test.num_interactions(),
            data.num_interactions());
}

TEST(NegativeSampler, NeverReturnsPositives) {
  InteractionDataset data = SmallDataset();
  NegativeSampler sampler(data);
  Rng rng(13);
  for (int32_t u = 0; u < data.num_users(); ++u) {
    for (int i = 0; i < 50; ++i) {
      EXPECT_FALSE(data.Contains(u, sampler.Sample(u, rng)));
    }
  }
  std::vector<int32_t> many = sampler.SampleMany(0, 3, rng);
  EXPECT_EQ(many.size(), 3u);
  std::unordered_set<int32_t> distinct(many.begin(), many.end());
  EXPECT_EQ(distinct.size(), many.size());
}

WorldConfig TestConfig() {
  WorldConfig config;
  config.num_users = 60;
  config.num_items = 80;
  config.avg_interactions_per_user = 10.0;
  config.item_relations = {{"genre", 6, 1, 0.9f}, {"actor", 15, 2, 0.7f}};
  config.seed = 2024;
  return config;
}

TEST(SyntheticWorld, DeterministicBySeed) {
  SyntheticWorld a = GenerateWorld(TestConfig());
  SyntheticWorld b = GenerateWorld(TestConfig());
  ASSERT_EQ(a.interactions.num_interactions(),
            b.interactions.num_interactions());
  for (size_t i = 0; i < a.interactions.num_interactions(); ++i) {
    EXPECT_EQ(a.interactions.interactions()[i].user,
              b.interactions.interactions()[i].user);
    EXPECT_EQ(a.interactions.interactions()[i].item,
              b.interactions.interactions()[i].item);
  }
  EXPECT_EQ(a.item_kg.num_triples(), b.item_kg.num_triples());
  WorldConfig other = TestConfig();
  other.seed = 2025;
  SyntheticWorld c = GenerateWorld(other);
  bool differs =
      a.interactions.num_interactions() != c.interactions.num_interactions();
  for (size_t i = 0; !differs && i < a.interactions.num_interactions(); ++i) {
    differs = a.interactions.interactions()[i].item !=
              c.interactions.interactions()[i].item;
  }
  EXPECT_TRUE(differs);
}

TEST(SyntheticWorld, KgStructureMatchesSpecs) {
  SyntheticWorld world = GenerateWorld(TestConfig());
  const KnowledgeGraph& kg = world.item_kg;
  // Entities: 80 items + 6 genres + 15 actors.
  EXPECT_EQ(kg.num_entities(), 80u + 6u + 15u);
  // Relations: genre, actor + inverses.
  EXPECT_EQ(kg.num_relations(), 4u);
  // Triples: 80*1 genre + 80*2 actor links, doubled by inverses.
  EXPECT_EQ(kg.num_triples(), 2u * (80u + 160u));
  // Entity j == item j, typed 0.
  for (int32_t j = 0; j < 80; ++j) {
    EXPECT_EQ(kg.entity_name(j), "item_" + std::to_string(j));
    EXPECT_EQ(world.entity_types[j], 0);
  }
  // Every item has exactly one genre edge.
  RelationId genre = -1;
  ASSERT_TRUE(kg.FindRelation("genre", &genre).ok());
  for (int32_t j = 0; j < 80; ++j) {
    size_t genre_edges = 0;
    for (size_t e = 0; e < kg.OutDegree(j); ++e) {
      if (kg.OutEdges(j)[e].relation == genre) ++genre_edges;
    }
    EXPECT_EQ(genre_edges, 1u);
  }
}

TEST(SyntheticWorld, InteractionsRespectBudget) {
  SyntheticWorld world = GenerateWorld(TestConfig());
  for (int32_t u = 0; u < world.interactions.num_users(); ++u) {
    const size_t count = world.interactions.UserItems(u).size();
    EXPECT_GE(count, 1u);
    EXPECT_LE(count, 80u);
    // No duplicate items per user.
    std::unordered_set<int32_t> distinct(
        world.interactions.UserItems(u).begin(),
        world.interactions.UserItems(u).end());
    EXPECT_EQ(distinct.size(), count);
  }
  const double avg =
      static_cast<double>(world.interactions.num_interactions()) /
      world.interactions.num_users();
  EXPECT_GT(avg, 5.0);
  EXPECT_LT(avg, 15.0);
}

TEST(SyntheticWorld, KgCarriesPreferenceSignal) {
  // Items sharing a genre should have more similar true latent vectors
  // than random pairs — the property S1 experiments rely on.
  SyntheticWorld world = GenerateWorld(TestConfig());
  RelationId genre = -1;
  ASSERT_TRUE(world.item_kg.FindRelation("genre", &genre).ok());
  std::vector<int32_t> genre_of(80, -1);
  for (const Triple& t : world.item_kg.triples()) {
    if (t.relation == genre) genre_of[t.head] = t.tail;
  }
  double same = 0.0, diff = 0.0;
  size_t same_n = 0, diff_n = 0;
  const size_t d = world.config.latent_dim;
  for (int32_t a = 0; a < 80; ++a) {
    for (int32_t b = a + 1; b < 80; ++b) {
      const float cos = dense::CosineSimilarity(world.item_factors.Row(a),
                                                world.item_factors.Row(b), d);
      if (genre_of[a] == genre_of[b]) {
        same += cos;
        ++same_n;
      } else {
        diff += cos;
        ++diff_n;
      }
    }
  }
  EXPECT_GT(same / same_n, diff / diff_n + 0.1);
}

TEST(UserItemGraphTest, LayoutAndInteractEdges) {
  SyntheticWorld world = GenerateWorld(TestConfig());
  Rng rng(14);
  DataSplit split = RatioSplit(world.interactions, 0.25, rng);
  UserItemGraph graph = BuildUserItemGraph(world, split.train);
  EXPECT_EQ(graph.num_users, 60);
  EXPECT_EQ(graph.num_items, 80);
  EXPECT_EQ(graph.kg.num_entities(), 60u + world.item_kg.num_entities());
  EXPECT_EQ(graph.kg.entity_name(graph.UserEntity(3)), "user_3");
  EXPECT_EQ(graph.kg.entity_name(graph.ItemEntity(5)), "item_5");
  // Train interactions are edges; test interactions are not.
  for (const Interaction& x : split.train.interactions()) {
    EXPECT_TRUE(graph.kg.HasTriple(graph.UserEntity(x.user),
                                   graph.interact_relation,
                                   graph.ItemEntity(x.item)));
  }
  for (const Interaction& x : split.test.interactions()) {
    EXPECT_FALSE(graph.kg.HasTriple(graph.UserEntity(x.user),
                                    graph.interact_relation,
                                    graph.ItemEntity(x.item)));
  }
  // Attribute edges are preserved with shifted ids.
  EXPECT_EQ(graph.kg.num_triples(),
            world.item_kg.num_triples() +
                2 * split.train.num_interactions());
  Hin hin = graph.MakeHin();
  EXPECT_EQ(hin.EntitiesOfType(0).size(), 60u);  // users
  EXPECT_EQ(hin.EntitiesOfType(1).size(), 80u);  // items
}

TEST(Presets, AllGenerateAndMatchProfiles) {
  for (const ScenarioPreset& preset : AllPresets()) {
    SyntheticWorld world = GenerateWorld(preset.config);
    EXPECT_GT(world.interactions.num_interactions(), 100u) << preset.dataset;
    EXPECT_GT(world.item_kg.num_triples(), 0u) << preset.dataset;
  }
  // Profile property from Table 4 scenarios: Book-Crossing is much
  // sparser than MovieLens.
  SyntheticWorld ml = GenerateWorld(GetPreset("movielens-100k").config);
  SyntheticWorld bx = GenerateWorld(GetPreset("book-crossing").config);
  EXPECT_GT(ml.interactions.Density(), 2.0 * bx.interactions.Density());
}

TEST(Presets, LookupByName) {
  ScenarioPreset p = GetPreset("bing-news");
  EXPECT_EQ(p.scenario, "News");
  EXPECT_EQ(p.dataset, "Bing-News");
}

}  // namespace
}  // namespace kgrec
