// Lockdown for the streaming/online-update layer (DESIGN.md §13): the
// event-stream replay contract, the registry-wide Recommender::Update()
// determinism contract, the InteractionDataset frozen-epoch machinery
// that lets serve-path readers survive a streaming writer, the
// KnowledgeGraph incremental-batch growth path, and the router's
// SwapFromUpdate hot swap.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/recommender.h"
#include "core/registry.h"
#include "data/event_stream.h"
#include "data/interactions.h"
#include "data/synthetic.h"
#include "eval/protocol.h"
#include "graph/knowledge_graph.h"
#include "serve/router.h"
#include "serve/serve_handle.h"

namespace kgrec {
namespace {

EventStreamConfig TinyStreamConfig() {
  WorldConfig world;
  world.name = "update-test";
  world.num_users = 26;
  world.num_items = 20;
  world.avg_interactions_per_user = 5.0;
  world.item_relations = {
      {.name = "genre", .num_values = 6, .links_per_item = 2},
      {.name = "studio", .num_values = 5, .links_per_item = 1},
  };
  EventStreamConfig config;
  config.world = world;
  config.base_user_fraction = 0.7;
  config.held_out_values_per_relation = 2;
  config.stream_seed = 17;
  return config;
}

RecContext MakeContext(const InteractionDataset& train,
                       const KnowledgeGraph& kg, const UserItemGraph& uig) {
  RecContext ctx;
  ctx.train = &train;
  ctx.item_kg = &kg;
  ctx.user_item_graph = &uig;
  ctx.seed = 17;
  return ctx;
}

/// Bitwise score equality over a spread of users (old and new) and a
/// duplicate-bearing candidate list.
void ExpectScoresBitwise(const Recommender& a, const Recommender& b,
                         int32_t num_users, int32_t num_items) {
  std::vector<int32_t> candidates;
  for (int32_t i = 0; i < num_items; i += 2) candidates.push_back(i);
  candidates.push_back(candidates.front());
  for (int32_t user = 0; user < num_users; user += 3) {
    const std::vector<float> sa = a.ScoreItems(user, candidates);
    const std::vector<float> sb = b.ScoreItems(user, candidates);
    for (size_t i = 0; i < candidates.size(); ++i) {
      ASSERT_EQ(std::memcmp(&sa[i], &sb[i], sizeof(float)), 0)
          << a.name() << ": user " << user << " item " << candidates[i];
    }
  }
}

// ---------------------------------------------------------------------
// Event stream: replay == from-scratch build, and stream shape.

TEST(EventStream, PrefixReplayMatchesFromScratchBuild) {
  const EventStream stream(TinyStreamConfig());
  const size_t n = stream.size();
  ASSERT_GT(n, 0u);

  InteractionDataset replayed = stream.BaseInteractions();
  KnowledgeGraph replayed_kg = stream.BaseItemKg();
  size_t prev = 0;
  for (const size_t t : {size_t{0}, n / 4, n / 2, n}) {
    stream.ApplyBatch(stream.Batch(prev, t), &replayed, &replayed_kg);
    prev = t;
    const StreamSnapshot snap = stream.MaterializeAt(static_cast<int64_t>(t));
    std::string why;
    EXPECT_TRUE(StreamEquals(replayed, replayed_kg, snap.interactions,
                             snap.item_kg, &why))
        << "prefix " << t << ": " << why;
  }
  EXPECT_EQ(replayed.num_users(), stream.total_num_users());
  EXPECT_EQ(replayed_kg.num_entities(), stream.total_num_entities());
}

TEST(EventStream, StreamShapeInvariants) {
  const EventStream stream(TinyStreamConfig());
  const auto& events = stream.events();
  ASSERT_FALSE(events.empty());

  int32_t users_so_far = stream.base_num_users();
  EntityId next_entity = static_cast<EntityId>(stream.base_num_entities());
  int64_t expected_ts = 1;
  for (const Event& e : events) {
    EXPECT_EQ(e.timestamp, expected_ts++);  // dense, strictly increasing
    switch (e.kind) {
      case EventKind::kNewUser:
        EXPECT_EQ(e.user, users_so_far++);  // id suffix, arrival order
        break;
      case EventKind::kNewInteraction:
        EXPECT_GE(e.user, 0);
        EXPECT_LT(e.user, users_so_far);  // the user already arrived
        EXPECT_GE(e.item, 0);
        EXPECT_LT(e.item, stream.num_items());
        break;
      case EventKind::kNewEntity:
        EXPECT_EQ(e.entity, next_entity++);  // compact suffix ids
        EXPECT_GE(e.entity_type, 1);
        EXPECT_FALSE(e.entity_name.empty());
        break;
      case EventKind::kNewFact:
        EXPECT_GE(e.head, 0);
        EXPECT_LT(e.head, next_entity);
        EXPECT_GE(e.tail, 0);
        EXPECT_LT(e.tail, next_entity);
        EXPECT_GE(e.relation, 0);
        EXPECT_NE(e.relation, e.inverse_relation);
        break;
    }
  }
  EXPECT_EQ(users_so_far, stream.total_num_users());
  EXPECT_EQ(static_cast<size_t>(next_entity), stream.total_num_entities());
}

// ---------------------------------------------------------------------
// The registry-wide Update() contract.

TEST(OnlineUpdate, RegistryAgreesWithModels) {
  for (const std::string& name : ImplementedMethodNames()) {
    std::unique_ptr<Recommender> model = MakeRecommender(name);
    ASSERT_NE(model, nullptr) << name;
    EXPECT_EQ(SupportsUpdate(name), model->SupportsUpdate()) << name;
  }
  // The updatable zoo is non-trivial and spans the MF, KGE and
  // propagation families.
  const std::vector<std::string> updatable = UpdatableMethodNames();
  EXPECT_GE(updatable.size(), 5u);
}

// Every updatable model: fit -> update must serve bitwise the same
// scores as fit -> save -> load -> update (no hidden RNG state survives
// a checkpoint), and the updated model's metrics must be bitwise
// identical at 1/2/8 eval threads.
TEST(OnlineUpdate, BitwiseAcrossRoundtripAndThreadCounts) {
  const EventStream stream(TinyStreamConfig());
  const size_t n = stream.size();

  const InteractionDataset base_train = stream.BaseInteractions();
  const KnowledgeGraph base_kg = stream.BaseItemKg();
  const UserItemGraph base_uig = stream.BaseUserItemGraph();
  const RecContext base_ctx = MakeContext(base_train, base_kg, base_uig);

  InteractionDataset live_train = base_train;
  KnowledgeGraph live_kg = base_kg;
  UserItemGraph live_uig = base_uig;
  const RecContext live_ctx = MakeContext(live_train, live_kg, live_uig);

  // Fit + clone everything on the pristine base, then stream the world
  // in two batches (so folds must not depend on batch partitioning).
  const std::string ckpt = testing::TempDir() + "update_roundtrip.kgrc";
  std::vector<std::unique_ptr<Recommender>> fitted, restored;
  for (const std::string& name : UpdatableMethodNames()) {
    std::unique_ptr<Recommender> model = MakeRecommender(name);
    model->Fit(base_ctx);
    ASSERT_TRUE(model->Save(ckpt).ok()) << name;
    std::unique_ptr<Recommender> clone;
    ASSERT_TRUE(LoadModel(base_ctx, ckpt, &clone).ok()) << name;
    fitted.push_back(std::move(model));
    restored.push_back(std::move(clone));
  }
  std::remove(ckpt.c_str());
  size_t prev = 0;
  for (const size_t t : {n / 2, n}) {
    const EventBatch batch = stream.Batch(prev, t);
    prev = t;
    stream.ApplyBatch(batch, &live_train, &live_kg);
    stream.ApplyBatchToUserItemGraph(batch, &live_uig);
    for (size_t i = 0; i < fitted.size(); ++i) {
      ASSERT_TRUE(fitted[i]->Update(live_ctx, batch).ok())
          << fitted[i]->name();
      ASSERT_TRUE(restored[i]->Update(live_ctx, batch).ok())
          << restored[i]->name();
    }
  }

  // An eval probe over the streamed tail (determinism check, so overlap
  // with the folded events is irrelevant).
  InteractionDataset probe(live_train.num_users(), live_train.num_items());
  const auto& events = stream.events();
  for (size_t i = 3 * n / 4; i < n; ++i) {
    if (events[i].kind == EventKind::kNewInteraction) {
      probe.Add(events[i].user, events[i].item);
    }
  }
  ASSERT_GT(probe.num_interactions(), 0u);

  for (size_t i = 0; i < fitted.size(); ++i) {
    ExpectScoresBitwise(*fitted[i], *restored[i], stream.total_num_users(),
                        stream.num_items());
    EvalOptions options;
    options.seed = Rng(102).NextUint64();
    options.num_threads = 1;
    const TopKMetrics serial =
        EvaluateTopK(*fitted[i], live_train, probe, options);
    for (const size_t threads : {size_t{2}, size_t{8}}) {
      options.num_threads = threads;
      const TopKMetrics parallel =
          EvaluateTopK(*fitted[i], live_train, probe, options);
      EXPECT_EQ(std::memcmp(&serial.ndcg, &parallel.ndcg, sizeof(double)), 0)
          << fitted[i]->name() << " at " << threads << " threads";
      EXPECT_EQ(std::memcmp(&serial.mrr, &parallel.mrr, sizeof(double)), 0)
          << fitted[i]->name() << " at " << threads << " threads";
      EXPECT_EQ(serial.num_users, parallel.num_users) << fitted[i]->name();
    }
  }
}

TEST(OnlineUpdate, NonUpdatableRefusesAndStaysUntouched) {
  const EventStream stream(TinyStreamConfig());
  const InteractionDataset base_train = stream.BaseInteractions();
  const KnowledgeGraph base_kg = stream.BaseItemKg();
  const UserItemGraph base_uig = stream.BaseUserItemGraph();
  const RecContext base_ctx = MakeContext(base_train, base_kg, base_uig);

  std::string non_updatable;
  for (const std::string& name : ImplementedMethodNames()) {
    if (!SupportsUpdate(name)) {
      non_updatable = name;
      break;
    }
  }
  ASSERT_FALSE(non_updatable.empty());

  std::unique_ptr<Recommender> model = MakeRecommender(non_updatable);
  model->Fit(base_ctx);
  std::vector<int32_t> candidates;
  for (int32_t i = 0; i < stream.num_items(); ++i) candidates.push_back(i);
  const std::vector<float> before = model->ScoreItems(0, candidates);

  const Status status =
      model->Update(base_ctx, stream.Batch(0, stream.size()));
  EXPECT_EQ(status.code(), StatusCode::kUnimplemented);
  EXPECT_FALSE(model->SupportsUpdate());

  const std::vector<float> after = model->ScoreItems(0, candidates);
  for (size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_EQ(std::memcmp(&before[i], &after[i], sizeof(float)), 0);
  }
}

TEST(OnlineUpdate, UnfittedModelFailsPrecondition) {
  const EventStream stream(TinyStreamConfig());
  const InteractionDataset base_train = stream.BaseInteractions();
  const KnowledgeGraph base_kg = stream.BaseItemKg();
  const UserItemGraph base_uig = stream.BaseUserItemGraph();
  const RecContext base_ctx = MakeContext(base_train, base_kg, base_uig);
  for (const char* name : {"MF", "RippleNet"}) {
    std::unique_ptr<Recommender> model = MakeRecommender(name);
    const Status status =
        model->Update(base_ctx, stream.Batch(0, stream.size()));
    EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition) << name;
  }
}

// ---------------------------------------------------------------------
// InteractionDataset frozen epochs: the streaming writer's contract.

TEST(FreezeThaw, FrozenEpochPinsReadsAndGeneration) {
  InteractionDataset data(4, 8);
  data.Add(0, 1);
  data.Add(0, 2);
  data.Add(1, 3);
  ASSERT_FALSE(data.UserItems(0).empty());  // builds the index
  const uint64_t built = data.index_generation();
  EXPECT_GT(built, 0u);

  data.Freeze();
  EXPECT_TRUE(data.frozen());
  const std::span<const int32_t> pinned = data.UserItems(0);
  data.Add(0, 7);       // lands in the log, invisible to the epoch
  data.GrowUsers(2);    // deferred: new users report empty histories
  EXPECT_EQ(data.num_users(), 6);
  EXPECT_EQ(data.num_interactions(), 4u);
  EXPECT_EQ(data.index_generation(), built);  // no rebuild while frozen
  EXPECT_FALSE(data.Contains(0, 7));          // pinned-epoch answer
  EXPECT_EQ(data.UserItems(0).size(), 2u);
  EXPECT_EQ(data.UserItems(0).data(), pinned.data());  // same storage
  EXPECT_TRUE(data.UserItems(4).empty());

  data.Thaw();
  EXPECT_FALSE(data.frozen());
  EXPECT_TRUE(data.Contains(0, 7));  // appended event now visible
  EXPECT_EQ(data.UserItems(0).size(), 3u);
  EXPECT_GT(data.index_generation(), built);
}

TEST(FreezeThaw, ContainsFallsBackToLinearScanOnDirtyIndex) {
  InteractionDataset data(3, 40);
  data.Add(0, 4);
  data.Add(0, 30);
  // No index built yet: Contains answers from the log without forcing a
  // build (a one-off query must never reallocate under span holders).
  EXPECT_TRUE(data.Contains(0, 30));
  EXPECT_FALSE(data.Contains(0, 5));
  EXPECT_EQ(data.index_generation(), 0u);

  ASSERT_EQ(data.UserItems(0).size(), 2u);  // builds; binary-search lane
  const uint64_t built = data.index_generation();
  EXPECT_TRUE(data.Contains(0, 4));
  EXPECT_EQ(data.index_generation(), built);

  // Dirty the index: Contains must see the new pair via the linear
  // fallback and must NOT rebuild (generation unchanged).
  data.Add(1, 17);
  EXPECT_TRUE(data.Contains(1, 17));
  EXPECT_FALSE(data.Contains(1, 16));
  EXPECT_EQ(data.index_generation(), built);
  // The next span request rebuilds.
  EXPECT_EQ(data.UserItems(1).size(), 1u);
  EXPECT_GT(data.index_generation(), built);
}

// TSan regression: reader threads hammer UserItems()/Contains() and hold
// spans across calls while the single streaming writer appends into a
// frozen epoch and widens the user space. Any index rebuild concurrent
// with those reads is a race; the frozen epoch is what forbids it.
TEST(FreezeThaw, ConcurrentEpochReadersDuringFrozenAppends) {
  constexpr int32_t kUsers = 24;
  constexpr int32_t kItems = 16;
  InteractionDataset data(kUsers, kItems);
  Rng rng(11);
  for (int32_t u = 0; u < kUsers; ++u) {
    for (int k = 0; k < 5; ++k) {
      data.Add(u, static_cast<int32_t>(rng.UniformInt(kItems - 1)));
    }
  }
  data.Freeze();
  std::vector<std::vector<int32_t>> pinned(kUsers);
  for (int32_t u = 0; u < kUsers; ++u) {
    const auto span = data.UserItems(u);
    pinned[u].assign(span.begin(), span.end());
  }

  std::atomic<bool> stop{false};
  std::atomic<bool> readers_ok{true};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&]() {
      while (!stop.load(std::memory_order_acquire)) {
        for (int32_t u = 0; u < kUsers; ++u) {
          const auto span = data.UserItems(u);
          if (span.size() != pinned[u].size() ||
              !std::equal(span.begin(), span.end(), pinned[u].begin())) {
            readers_ok.store(false, std::memory_order_release);
          }
          // Item kItems-1 never appears pre-freeze; while frozen the
          // writer's appends of it must stay invisible.
          if (data.Contains(u, kItems - 1)) {
            readers_ok.store(false, std::memory_order_release);
          }
        }
      }
    });
  }
  for (int32_t i = 0; i < 2400; ++i) {
    data.Add(i % kUsers, kItems - 1);
  }
  data.GrowUsers(4);
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_TRUE(readers_ok.load());

  data.Thaw();
  EXPECT_EQ(data.num_users(), kUsers + 4);
  EXPECT_TRUE(data.Contains(0, kItems - 1));
  EXPECT_EQ(data.UserItems(0).size(), pinned[0].size() + 2400 / kUsers);
}

// ---------------------------------------------------------------------
// KnowledgeGraph incremental batches.

TEST(IncrementalBatch, RebuiltCsrEqualsFromScratchBuild) {
  // Base graph, finalized.
  KnowledgeGraph inc;
  for (int i = 0; i < 6; ++i) inc.AddEntity("e" + std::to_string(i));
  const RelationId a = inc.AddRelation("a");
  const RelationId b = inc.AddRelation("b");
  ASSERT_TRUE(inc.AddTriple(0, a, 3).ok());
  ASSERT_TRUE(inc.AddTriple(1, a, 4).ok());
  ASSERT_TRUE(inc.AddTriple(2, b, 5).ok());
  inc.Finalize();

  // Post-finalize stray writes are rejected, not absorbed.
  EXPECT_EQ(inc.AddTriple(0, b, 5).code(), StatusCode::kFailedPrecondition);

  // Grow through the sanctioned bracket, deliberately in a different
  // insertion order than the from-scratch build below.
  ASSERT_TRUE(inc.BeginIncrementalBatch().ok());
  EXPECT_EQ(inc.BeginIncrementalBatch().code(),
            StatusCode::kFailedPrecondition);  // no nesting
  const EntityId e6 = inc.AddEntity("e6");
  EXPECT_EQ(e6, 6);
  ASSERT_TRUE(inc.AddTriple(e6, b, 0).ok());
  ASSERT_TRUE(inc.AddTriple(0, b, e6).ok());
  ASSERT_TRUE(inc.FinalizeIncrementalBatch().ok());
  EXPECT_EQ(inc.FinalizeIncrementalBatch().code(),
            StatusCode::kFailedPrecondition);  // bracket closed

  // From-scratch reference with the same final content.
  KnowledgeGraph ref;
  for (int i = 0; i < 7; ++i) ref.AddEntity("e" + std::to_string(i));
  const RelationId ra = ref.AddRelation("a");
  const RelationId rb = ref.AddRelation("b");
  ASSERT_TRUE(ref.AddTriple(0, rb, 6).ok());  // different insertion order
  ASSERT_TRUE(ref.AddTriple(6, rb, 0).ok());
  ASSERT_TRUE(ref.AddTriple(0, ra, 3).ok());
  ASSERT_TRUE(ref.AddTriple(1, ra, 4).ok());
  ASSERT_TRUE(ref.AddTriple(2, rb, 5).ok());
  ref.Finalize();

  ASSERT_EQ(inc.num_entities(), ref.num_entities());
  ASSERT_EQ(inc.num_triples(), ref.num_triples());
  for (EntityId e = 0; e < static_cast<EntityId>(inc.num_entities()); ++e) {
    ASSERT_EQ(inc.OutDegree(e), ref.OutDegree(e)) << "entity " << e;
    EXPECT_EQ(std::memcmp(inc.OutEdges(e), ref.OutEdges(e),
                          inc.OutDegree(e) * sizeof(Edge)),
              0)
        << "entity " << e;  // rows sorted: bitwise, not just set-equal
  }
  EXPECT_TRUE(inc.HasTriple(0, b, e6));
  EXPECT_TRUE(inc.HasTriple(e6, b, 0));
}

TEST(IncrementalBatch, RejectsUnfinalizedAndReleasedGraphs) {
  KnowledgeGraph building;
  building.AddEntity("x");
  EXPECT_EQ(building.BeginIncrementalBatch().code(),
            StatusCode::kFailedPrecondition);  // not finalized yet

  KnowledgeGraph released;
  released.AddEntity("x");
  released.AddEntity("y");
  const RelationId r = released.AddRelation("r");
  ASSERT_TRUE(released.AddTriple(0, r, 1).ok());
  released.Finalize();
  released.ReleaseTriples();
  EXPECT_EQ(released.BeginIncrementalBatch().code(),
            StatusCode::kFailedPrecondition);  // needs the triple list
}

// ---------------------------------------------------------------------
// Router::SwapFromUpdate.

TEST(SwapFromUpdate, InstallsUpdatedCopyAndBumpsGeneration) {
  const EventStream stream(TinyStreamConfig());
  const size_t n = stream.size();
  const InteractionDataset base_train = stream.BaseInteractions();
  const KnowledgeGraph base_kg = stream.BaseItemKg();
  const UserItemGraph base_uig = stream.BaseUserItemGraph();
  const RecContext base_ctx = MakeContext(base_train, base_kg, base_uig);

  InteractionDataset live_train = base_train;
  KnowledgeGraph live_kg = base_kg;
  UserItemGraph live_uig = base_uig;
  const RecContext live_ctx = MakeContext(live_train, live_kg, live_uig);
  const EventBatch batch = stream.Batch(0, n);
  stream.ApplyBatch(batch, &live_train, &live_kg);
  stream.ApplyBatchToUserItemGraph(batch, &live_uig);

  // The reference path: the same fit + update, applied directly.
  std::unique_ptr<Recommender> reference = MakeRecommender("MF");
  reference->Fit(base_ctx);
  ASSERT_TRUE(reference->Update(live_ctx, batch).ok());

  std::unique_ptr<Recommender> serving = MakeRecommender("MF");
  serving->Fit(base_ctx);
  serve::RouterConfig config;
  config.num_threads = 2;
  serve::Router router(config,
                       serve::ServeHandle::Adopt(std::move(serving),
                                                 base_ctx, 1));
  ASSERT_EQ(router.current()->generation(), 1u);

  ASSERT_TRUE(router.SwapFromUpdate(base_ctx, live_ctx, batch).ok());
  const std::shared_ptr<const serve::ServeHandle> handle = router.current();
  EXPECT_EQ(handle->generation(), 2u);
  EXPECT_EQ(router.Stats().swaps, 1u);
  ExpectScoresBitwise(handle->model(), *reference, stream.total_num_users(),
                      stream.num_items());

  // Traffic through the router is served by the updated generation.
  serve::ScoreRequest request;
  request.user = stream.total_num_users() - 1;  // arrived mid-stream
  for (int32_t i = 0; i < stream.num_items(); i += 4) {
    request.items.push_back(i);
  }
  const serve::ScoreResponse response = router.ScoreSync(request);
  ASSERT_TRUE(response.status.ok());
  EXPECT_EQ(response.generation, 2u);
  const std::vector<float> direct =
      reference->ScoreItems(request.user, request.items);
  for (size_t i = 0; i < request.items.size(); ++i) {
    EXPECT_EQ(std::memcmp(&response.scores[i], &direct[i], sizeof(float)), 0);
  }
}

TEST(SwapFromUpdate, NonUpdatableModelLeavesOldHandleServing) {
  const EventStream stream(TinyStreamConfig());
  const InteractionDataset base_train = stream.BaseInteractions();
  const KnowledgeGraph base_kg = stream.BaseItemKg();
  const UserItemGraph base_uig = stream.BaseUserItemGraph();
  const RecContext base_ctx = MakeContext(base_train, base_kg, base_uig);

  std::string non_updatable;
  for (const std::string& name : ImplementedMethodNames()) {
    if (!SupportsUpdate(name)) {
      non_updatable = name;
      break;
    }
  }
  std::unique_ptr<Recommender> model = MakeRecommender(non_updatable);
  model->Fit(base_ctx);
  serve::RouterConfig config;
  config.num_threads = 2;
  serve::Router router(config,
                       serve::ServeHandle::Adopt(std::move(model),
                                                 base_ctx, 1));

  const Status status =
      router.SwapFromUpdate(base_ctx, base_ctx, stream.Batch(0, 0));
  EXPECT_EQ(status.code(), StatusCode::kUnimplemented);
  EXPECT_EQ(router.current()->generation(), 1u);  // old handle untouched
  EXPECT_EQ(router.Stats().swaps, 0u);
}

}  // namespace
}  // namespace kgrec
