// Tests for the nn engine beyond gradients: tensor API, forward-value
// correctness, numerical stability and optimizer behavior.

#include <gtest/gtest.h>

#include <cmath>

#include "math/rng.h"
#include "nn/init.h"
#include "nn/layers.h"
#include "nn/ops.h"
#include "nn/optim.h"

namespace kgrec::nn {
namespace {

TEST(TensorApi, ZerosScalarFromData) {
  Tensor z = Tensor::Zeros(2, 3);
  EXPECT_EQ(z.rows(), 2u);
  EXPECT_EQ(z.cols(), 3u);
  for (size_t i = 0; i < z.size(); ++i) EXPECT_FLOAT_EQ(z.data()[i], 0.0f);
  Tensor s = Tensor::Scalar(2.5f);
  EXPECT_FLOAT_EQ(s.value(), 2.5f);
  Tensor d = Tensor::FromData(1, 2, {1.0f, -1.0f});
  EXPECT_FALSE(d.requires_grad());
  Tensor undefined;
  EXPECT_FALSE(undefined.defined());
}

TEST(ForwardValues, ElementwiseAndMatMul) {
  Tensor a = Tensor::FromData(2, 2, {1, 2, 3, 4});
  Tensor b = Tensor::FromData(2, 2, {5, 6, 7, 8});
  Tensor sum = Add(a, b);
  EXPECT_FLOAT_EQ(sum.data()[0], 6.0f);
  EXPECT_FLOAT_EQ(sum.data()[3], 12.0f);
  Tensor prod = MatMul(a, b);
  EXPECT_FLOAT_EQ(prod.data()[0], 19.0f);
  EXPECT_FLOAT_EQ(prod.data()[3], 50.0f);
  Tensor t = Transpose(a);
  EXPECT_FLOAT_EQ(t.data()[1], 3.0f);
}

TEST(ForwardValues, SoftmaxRowsSumToOne) {
  Tensor a = Tensor::FromData(2, 3, {1, 2, 3, -1, 0, 1});
  Tensor s = Softmax(a);
  for (size_t r = 0; r < 2; ++r) {
    float total = 0.0f;
    for (size_t c = 0; c < 3; ++c) total += s.data()[r * 3 + c];
    EXPECT_NEAR(total, 1.0f, 1e-6f);
  }
  // Monotone within a row.
  EXPECT_LT(s.data()[0], s.data()[1]);
  EXPECT_LT(s.data()[1], s.data()[2]);
}

TEST(ForwardValues, SoftmaxStableForHugeLogits) {
  Tensor a = Tensor::FromData(1, 3, {1000.0f, 999.0f, -1000.0f});
  Tensor s = Softmax(a);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(std::isfinite(s.data()[i]));
  }
  EXPECT_GT(s.data()[0], s.data()[1]);
}

TEST(ForwardValues, BceStableForHugeLogits) {
  Tensor logits =
      Tensor::FromData(2, 1, {500.0f, -500.0f}, /*requires_grad=*/true);
  Tensor loss = BceWithLogits(logits, {1.0f, 0.0f});
  EXPECT_TRUE(std::isfinite(loss.value()));
  EXPECT_NEAR(loss.value(), 0.0f, 1e-6f);
  Backward(loss);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_TRUE(std::isfinite(logits.grad()[i]));
  }
}

TEST(ForwardValues, GatherCopiesRows) {
  Tensor table = Tensor::FromData(3, 2, {1, 2, 3, 4, 5, 6});
  Tensor g = Gather(table, {2, 0, 2});
  EXPECT_EQ(g.rows(), 3u);
  EXPECT_FLOAT_EQ(g.data()[0], 5.0f);
  EXPECT_FLOAT_EQ(g.data()[2], 1.0f);
  EXPECT_FLOAT_EQ(g.data()[4], 5.0f);
}

TEST(ForwardValues, ReshapeGroupSumSlice) {
  Tensor a = Tensor::FromData(4, 2, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor r = Reshape(a, 2, 4);
  EXPECT_FLOAT_EQ(r.data()[3], 4.0f);
  Tensor g = GroupSumRows(a, 2);
  EXPECT_EQ(g.rows(), 2u);
  EXPECT_FLOAT_EQ(g.data()[0], 4.0f);   // 1+3
  EXPECT_FLOAT_EQ(g.data()[3], 14.0f);  // 6+8
  Tensor s = SliceCols(r, 1, 2);
  EXPECT_FLOAT_EQ(s.data()[0], 2.0f);
  EXPECT_FLOAT_EQ(s.data()[1], 3.0f);
  Tensor idx = IndexedSumRows(a, {1, 0, 1, 1}, 2);
  EXPECT_FLOAT_EQ(idx.data()[0], 3.0f);
  EXPECT_FLOAT_EQ(idx.data()[2], 1.0f + 5.0f + 7.0f);
}

TEST(ForwardValues, RowwiseVecMatMatchesHand) {
  // x = [1, 2], M = [[1, 0], [0, 3]] -> x M = [1, 6].
  Tensor x = Tensor::FromData(1, 2, {1, 2});
  Tensor m = Tensor::FromData(1, 4, {1, 0, 0, 3});
  Tensor out = RowwiseVecMat(x, m);
  EXPECT_FLOAT_EQ(out.data()[0], 1.0f);
  EXPECT_FLOAT_EQ(out.data()[1], 6.0f);
}

TEST(Optim, SgdMinimizesQuadratic) {
  Tensor w = Tensor::FromData(1, 1, {5.0f}, /*requires_grad=*/true);
  Sgd opt({w}, 0.1f);
  for (int i = 0; i < 100; ++i) {
    opt.ZeroGrad();
    Backward(Square(w));
    opt.Step();
  }
  EXPECT_NEAR(w.value(), 0.0f, 1e-4f);
}

TEST(Optim, AdamAndAdagradMinimizeQuadratic) {
  for (int which = 0; which < 2; ++which) {
    Tensor w = Tensor::FromData(1, 2, {4.0f, -3.0f}, /*requires_grad=*/true);
    std::unique_ptr<Optimizer> opt;
    if (which == 0) {
      opt = std::make_unique<Adam>(std::vector<Tensor>{w}, 0.1f);
    } else {
      opt = std::make_unique<Adagrad>(std::vector<Tensor>{w}, 0.5f);
    }
    for (int i = 0; i < 300; ++i) {
      opt->ZeroGrad();
      Backward(Sum(Square(w)));
      opt->Step();
    }
    EXPECT_NEAR(w.data()[0], 0.0f, 1e-2f);
    EXPECT_NEAR(w.data()[1], 0.0f, 1e-2f);
  }
}

TEST(Optim, WeightDecayShrinksUnusedParams) {
  Tensor w = Tensor::FromData(1, 1, {1.0f}, /*requires_grad=*/true);
  Sgd opt({w}, 0.1f, /*weight_decay=*/0.5f);
  opt.ZeroGrad();  // gradient stays zero
  for (int i = 0; i < 10; ++i) opt.Step();
  EXPECT_LT(w.value(), 1.0f);
}

TEST(Init, XavierBoundsAndDeterminism) {
  Rng rng1(7), rng2(7);
  Tensor a = XavierUniform(10, 10, rng1);
  Tensor b = XavierUniform(10, 10, rng2);
  const float bound = std::sqrt(6.0f / 20.0f);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_LE(std::fabs(a.data()[i]), bound);
    EXPECT_FLOAT_EQ(a.data()[i], b.data()[i]);
  }
  EXPECT_TRUE(a.requires_grad());
}

TEST(Layers, LinearShapesAndBias) {
  Rng rng(8);
  Linear layer(3, 2, rng);
  Tensor x = Tensor::Zeros(4, 3);
  Tensor y = layer.Forward(x);
  EXPECT_EQ(y.rows(), 4u);
  EXPECT_EQ(y.cols(), 2u);
  // Zero input -> output equals bias broadcast (initialized zero).
  for (size_t i = 0; i < y.size(); ++i) EXPECT_FLOAT_EQ(y.data()[i], 0.0f);
}

TEST(Layers, GruAndLstmShapes) {
  Rng rng(9);
  GruCell gru(3, 5, rng);
  Tensor x = Tensor::FromData(2, 3, {1, 0, -1, 0.5f, 0.5f, 0.5f});
  Tensor h = Tensor::Zeros(2, 5);
  Tensor h2 = gru.Step(x, h);
  EXPECT_EQ(h2.rows(), 2u);
  EXPECT_EQ(h2.cols(), 5u);
  EXPECT_EQ(gru.Params().size(), 12u);

  LstmCell lstm(3, 5, rng);
  auto state = lstm.InitialState(2);
  state = lstm.Step(x, state);
  EXPECT_EQ(state.h.rows(), 2u);
  EXPECT_EQ(state.c.cols(), 5u);
  EXPECT_EQ(lstm.Params().size(), 16u);
}

TEST(BackwardGraph, NoGradGraphIsNoOp) {
  Tensor a = Tensor::FromData(1, 1, {3.0f});
  Tensor loss = Square(a);
  Backward(loss);  // must not crash even with no trainable parents
  SUCCEED();
}

}  // namespace
}  // namespace kgrec::nn
