// Tests of the explanation engine (Figure 1) and model-intrinsic
// explanations.

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "explain/explainer.h"
#include "path/path_finder.h"

namespace kgrec {
namespace {

struct Fixture {
  SyntheticWorld world;
  DataSplit split;
  UserItemGraph graph;

  Fixture() {
    WorldConfig config;
    config.num_users = 50;
    config.num_items = 80;
    config.avg_interactions_per_user = 12.0;
    config.item_relations = {{"genre", 6, 1, 0.9f}};
    config.seed = 404;
    world = GenerateWorld(config);
    Rng rng(3);
    split = RatioSplit(world.interactions, 0.2, rng);
    graph = BuildUserItemGraph(world, split.train);
  }
};

TEST(PathFinderTest, PathsAreValidGraphWalks) {
  Fixture f;
  TemplatePathFinder finder(f.graph, f.split.train, 3);
  size_t total = 0;
  for (int32_t u = 0; u < 10; ++u) {
    for (int32_t i = 0; i < 20; ++i) {
      for (const PathInstance& p : finder.FindPaths(u, i)) {
        ++total;
        EXPECT_EQ(p.entities.front(), f.graph.UserEntity(u));
        EXPECT_EQ(p.entities.back(), f.graph.ItemEntity(i));
        for (size_t k = 0; k < p.relations.size(); ++k) {
          EXPECT_TRUE(f.graph.kg.HasTriple(p.entities[k], p.relations[k],
                                           p.entities[k + 1]));
        }
        // The direct interact edge must never be the whole path.
        EXPECT_GT(p.relations.size(), 1u);
      }
    }
  }
  EXPECT_GT(total, 0u);
}

TEST(PathFinderTest, RespectsPerTemplateCap) {
  Fixture f;
  TemplatePathFinder finder(f.graph, f.split.train, 2);
  for (int32_t u = 0; u < 10; ++u) {
    for (int32_t i = 0; i < 20; ++i) {
      EXPECT_LE(finder.FindPaths(u, i).size(), 4u);
    }
  }
}

TEST(ExplainerTest, VerbalizesSharedAttributeReason) {
  Fixture f;
  Explainer explainer(f.graph, f.split.train);
  // Find a pair with an explanation.
  bool found_attribute_reason = false;
  for (int32_t u = 0; u < f.split.train.num_users() && !found_attribute_reason;
       ++u) {
    for (int32_t i = 0; i < f.split.train.num_items(); ++i) {
      for (const Explanation& e : explainer.Explain(u, i)) {
        EXPECT_FALSE(e.text.empty());
        if (e.text.find("shares genre") != std::string::npos) {
          found_attribute_reason = true;
          EXPECT_NE(e.text.find("which you interacted with"),
                    std::string::npos);
        }
      }
      if (found_attribute_reason) break;
    }
  }
  EXPECT_TRUE(found_attribute_reason);
}

TEST(ExplainerTest, NoPathsMeansNoExplanations) {
  // A user whose history shares nothing with a target item of another
  // genre and no co-consumers may yield zero explanations; the API must
  // return an empty list, not crash. We just exercise many pairs.
  Fixture f;
  Explainer explainer(f.graph, f.split.train);
  for (int32_t i = 0; i < f.split.train.num_items(); ++i) {
    (void)explainer.Explain(0, i, 2);
  }
  SUCCEED();
}

}  // namespace
}  // namespace kgrec
