// Registry-wide smoke test: every implemented method in the zoo must
// construct, Fit on a tiny synthetic world, produce finite scores and
// rankings, and survive the evaluation protocols. Integration tests
// cover each family's quality; this suite catches models that a future
// registry edit silently breaks (wrong factory wiring, crashes on small
// data, NaN scores) without the cost of quality thresholds.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cf/mf.h"
#include "core/recommender.h"
#include "core/registry.h"
#include "core/serialize.h"
#include "data/synthetic.h"
#include "eval/protocol.h"
#include "math/topk.h"
#include "unistd.h"

namespace kgrec {
namespace {

struct TinyWorld {
  SyntheticWorld world;
  DataSplit split;
  UserItemGraph ui_graph;

  TinyWorld() {
    WorldConfig config;
    config.num_users = 40;
    config.num_items = 60;
    config.avg_interactions_per_user = 10.0;
    config.item_relations = {{"genre", 6, 1, 0.9f}, {"studio", 10, 1, 0.7f}};
    config.seed = 313;
    world = GenerateWorld(config);
    Rng rng(14);
    split = RatioSplit(world.interactions, 0.25, rng);
    ui_graph = BuildUserItemGraph(world, split.train);
  }

  RecContext Context() const {
    RecContext ctx;
    ctx.train = &split.train;
    ctx.item_kg = &world.item_kg;
    ctx.user_item_graph = &ui_graph;
    ctx.seed = 23;
    return ctx;
  }
};

TinyWorld& SharedWorld() {
  static TinyWorld* world = new TinyWorld();
  return *world;
}

/// The serving layer holds models as `const Recommender&` (see
/// serve/serve_handle.h): this helper is the compile-time audit that the
/// whole serve path — Score, ScoreItems, ScoreAll — is reachable through
/// a const reference. A model that needs a non-const scoring method (a
/// lazy cache, a scratch buffer) breaks this file's build, not a serving
/// process at 3am.
std::vector<float> ScoreItemsViaConstRef(const Recommender& model,
                                         int32_t user,
                                         std::span<const int32_t> items) {
  return model.ScoreItems(user, items);
}

TEST(RegistrySmoke, EveryImplementedMethodHasAFactory) {
  size_t implemented = 0;
  for (const MethodInfo& info : AllMethods()) {
    if (!info.implemented) {
      EXPECT_EQ(MakeRecommender(info.name), nullptr)
          << info.name << " is catalogued as unimplemented but has a factory";
      continue;
    }
    ++implemented;
    EXPECT_NE(MakeRecommender(info.name), nullptr)
        << info.name << " is marked implemented but MakeRecommender fails";
  }
  EXPECT_EQ(implemented, ImplementedMethodNames().size());
  EXPECT_EQ(implemented, 38u) << "the README promises 38 implemented models";
}

class RegistrySmoke : public ::testing::TestWithParam<std::string> {};

TEST_P(RegistrySmoke, FitScoreRecommendEvaluate) {
  TinyWorld& w = SharedWorld();
  std::unique_ptr<Recommender> model = MakeRecommender(GetParam());
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->name().empty(), false);
  model->Fit(w.Context());

  // Score: finite for seen and unseen pairs.
  for (int32_t user : {0, 7, 39}) {
    for (int32_t item : {0, 31, 59}) {
      const float s = model->Score(user, item);
      EXPECT_TRUE(std::isfinite(s))
          << GetParam() << " Score(" << user << "," << item << ") = " << s;
    }
  }

  // Batched inference: ScoreItems must equal per-item Score bitwise (the
  // contract the eval protocols rely on), including duplicate candidates,
  // edge users, and the empty list.
  for (int32_t user : {0, 7, 39}) {
    const std::vector<int32_t> candidates{0, 31, 59, 31, 1, 58, 0};
    const std::vector<float> batched = model->ScoreItems(user, candidates);
    ASSERT_EQ(batched.size(), candidates.size()) << GetParam();
    for (size_t i = 0; i < candidates.size(); ++i) {
      EXPECT_EQ(batched[i], model->Score(user, candidates[i]))
          << GetParam() << " ScoreItems(" << user << ")[" << i
          << "] diverges from Score(" << user << "," << candidates[i] << ")";
    }
  }
  EXPECT_TRUE(model->ScoreItems(0, {}).empty()) << GetParam();

  // Const serve-path audit: the same call through a const reference (the
  // type every ServeHandle holds) must compile and match bitwise.
  {
    const std::vector<int32_t> candidates{0, 31, 59};
    const std::vector<float> via_const =
        ScoreItemsViaConstRef(*model, 7, candidates);
    const std::vector<float> direct = model->ScoreItems(7, candidates);
    ASSERT_EQ(via_const.size(), direct.size()) << GetParam();
    for (size_t i = 0; i < via_const.size(); ++i) {
      EXPECT_EQ(via_const[i], direct[i]) << GetParam();
    }
  }

  // Recommend: ScoreAll + top-k selection yields a full, finite ranking.
  const std::vector<float> all = model->ScoreAll(3, w.world.config.num_items);
  ASSERT_EQ(all.size(), static_cast<size_t>(w.world.config.num_items));
  for (float s : all) EXPECT_TRUE(std::isfinite(s)) << GetParam();
  const std::vector<int32_t> top = TopKIndices(all, 10);
  ASSERT_EQ(top.size(), 10u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(all[top[i - 1]], all[top[i]]) << GetParam();
  }

  // Evaluate: both protocols succeed and stay in range (2 threads, so the
  // whole zoo also smoke-tests concurrent Score()).
  EvalOptions options;
  options.num_threads = 2;
  options.num_negatives = 10;
  options.k = 5;
  const CtrMetrics ctr =
      EvaluateCtr(*model, w.split.train, w.split.test, options);
  EXPECT_GT(ctr.num_pairs, 0u);
  EXPECT_TRUE(std::isfinite(ctr.auc));
  EXPECT_GE(ctr.auc, 0.0);
  EXPECT_LE(ctr.auc, 1.0);
  const TopKMetrics topk =
      EvaluateTopK(*model, w.split.train, w.split.test, options);
  EXPECT_GT(topk.num_users, 0u);
  for (double m : {topk.precision, topk.recall, topk.hit_rate, topk.ndcg,
                   topk.mrr}) {
    EXPECT_TRUE(std::isfinite(m)) << GetParam();
    EXPECT_GE(m, 0.0) << GetParam();
    EXPECT_LE(m, 1.0) << GetParam();
  }
}

// ---- Checkpoint/restore across the whole zoo --------------------------

std::string CheckpointPath(const std::string& model_name) {
  std::string file = model_name;
  for (char& c : file) {
    if (c == '-' || c == ' ') c = '_';
  }
  return std::string(::testing::TempDir()) + "/" + file + ".kgrc";
}

TEST_P(RegistrySmoke, SaveLoadRoundtripIsBitwise) {
  TinyWorld& w = SharedWorld();
  std::unique_ptr<Recommender> fitted = MakeRecommender(GetParam());
  ASSERT_NE(fitted, nullptr);
  fitted->Fit(w.Context());

  const std::string path = CheckpointPath(GetParam());
  ASSERT_TRUE(fitted->Save(path).ok()) << GetParam();

  // LoadModel reconstructs the concrete type from the typed header alone.
  std::unique_ptr<Recommender> restored;
  const Status load = LoadModel(w.Context(), path, &restored);
  ASSERT_TRUE(load.ok()) << GetParam() << ": " << load.message();
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->name(), fitted->name());

  // The serve path must be bitwise identical to the fitted model's —
  // derived state (ripple sets, path contexts, sampled neighborhoods,
  // beam caches) is recomputed on load, and any divergence there shows
  // up as a float mismatch here.
  const std::vector<int32_t> candidates{0, 31, 59, 31, 1, 58, 0};
  for (int32_t user : {0, 7, 39}) {
    const std::vector<float> before = fitted->ScoreItems(user, candidates);
    const std::vector<float> after = restored->ScoreItems(user, candidates);
    ASSERT_EQ(before.size(), after.size());
    for (size_t i = 0; i < before.size(); ++i) {
      EXPECT_EQ(before[i], after[i])
          << GetParam() << " diverges after restore at user " << user
          << " candidate " << candidates[i];
    }
  }
  std::remove(path.c_str());
}

TEST(CheckpointNegative, UnknownModelNameIsInvalidArgument) {
  const std::string path =
      std::string(::testing::TempDir()) + "/unknown_model.kgrc";
  CheckpointHeader header;
  header.model_name = "NotARealModel";
  ASSERT_TRUE(SaveCheckpoint(path, header, {}).ok());
  std::unique_ptr<Recommender> out;
  const Status status = LoadModel(SharedWorld().Context(), path, &out);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("NotARealModel"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CheckpointNegative, WrongModelClassIsFailedPrecondition) {
  TinyWorld& w = SharedWorld();
  std::unique_ptr<Recommender> pop = MakeRecommender("Popularity");
  pop->Fit(w.Context());
  const std::string path =
      std::string(::testing::TempDir()) + "/wrong_class.kgrc";
  ASSERT_TRUE(pop->Save(path).ok());
  std::unique_ptr<Recommender> mf = MakeRecommender("MF");
  EXPECT_EQ(mf->Load(w.Context(), path).code(),
            StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(CheckpointNegative, StaleHyperFingerprintIsFailedPrecondition) {
  // A checkpoint trained under a non-default config must not restore
  // into the registry's default-config instance.
  TinyWorld& w = SharedWorld();
  MfConfig config;
  config.dim = 8;  // registry default is 16
  MfRecommender custom(config);
  custom.Fit(w.Context());
  const std::string path =
      std::string(::testing::TempDir()) + "/stale_fingerprint.kgrc";
  ASSERT_TRUE(custom.Save(path).ok());
  std::unique_ptr<Recommender> out;
  const Status status = LoadModel(w.Context(), path, &out);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("fingerprint"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CheckpointNegative, TruncatedCheckpointFailsCleanly) {
  TinyWorld& w = SharedWorld();
  std::unique_ptr<Recommender> model = MakeRecommender("MF");
  model->Fit(w.Context());
  const std::string path =
      std::string(::testing::TempDir()) + "/truncated.kgrc";
  ASSERT_TRUE(model->Save(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  std::unique_ptr<Recommender> out;
  EXPECT_FALSE(LoadModel(w.Context(), path, &out).ok());
  std::remove(path.c_str());
}

TEST(CheckpointNegative, StaleFormatVersionIsInvalidArgument) {
  // A checkpoint from a hypothetical future format revision must be
  // refused up front, not misparsed.
  const std::string path =
      std::string(::testing::TempDir()) + "/stale_version.kgrc";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const uint32_t version = kCheckpointFormatVersion + 1;
  ASSERT_EQ(std::fwrite("KGRC", 1, 4, f), 4u);
  ASSERT_EQ(std::fwrite(&version, sizeof(version), 1, f), 1u);
  std::fclose(f);
  std::unique_ptr<Recommender> out;
  const Status status = LoadModel(SharedWorld().Context(), path, &out);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("version"), std::string::npos);
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllImplemented, RegistrySmoke,
                         ::testing::ValuesIn(ImplementedMethodNames()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-' || c == ' ') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace kgrec
