// Unit and property tests for the evaluation library.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "eval/metrics.h"
#include "math/rng.h"

namespace kgrec {
namespace {

TEST(Auc, PerfectReversedAndRandom) {
  std::vector<float> scores{0.9f, 0.8f, 0.2f, 0.1f};
  std::vector<int> labels{1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(Auc(scores, labels), 1.0);
  std::vector<int> reversed{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(Auc(scores, reversed), 0.0);
  std::vector<float> constant{0.5f, 0.5f, 0.5f, 0.5f};
  EXPECT_DOUBLE_EQ(Auc(constant, labels), 0.5);
}

TEST(Auc, HandComputedWithTies) {
  // scores: pos {3, 1}, neg {2, 1}: pairs (3>2)=1, (3>1)=1, (1<2)=0,
  // (1=1)=0.5 -> AUC = 2.5/4.
  std::vector<float> scores{3.0f, 1.0f, 2.0f, 1.0f};
  std::vector<int> labels{1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(Auc(scores, labels), 2.5 / 4.0);
}

TEST(Auc, DegenerateClassesReturnHalf) {
  EXPECT_DOUBLE_EQ(Auc({1.0f, 2.0f}, {1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(Auc({1.0f, 2.0f}, {0, 0}), 0.5);
}

TEST(AccuracyF1, ThresholdAtBatchMedian) {
  // Lower median of {-1, -0.5, 0.5, 2} is -0.5; predictions are
  // score > -0.5, i.e. {1, 0, 1, 0} against labels {1, 0, 0, 1}.
  std::vector<float> scores{2.0f, -1.0f, 0.5f, -0.5f};
  std::vector<int> labels{1, 0, 0, 1};
  EXPECT_DOUBLE_EQ(Accuracy(scores, labels), 0.5);
  // tp=1 (score 2), fp=1 (0.5), fn=1 (-0.5): P=0.5, R=0.5, F1=0.5.
  EXPECT_DOUBLE_EQ(F1Score(scores, labels), 0.5);
  EXPECT_DOUBLE_EQ(F1Score({-1.0f}, {1}), 0.0);
}

TEST(AccuracyF1, UncalibratedScoresAreNotMajorityCollapsed) {
  // Regression: all-positive scores (e.g. popularity counts) used to be
  // thresholded at 0, predicting 1 for everything — accuracy pinned at
  // the positive rate no matter how well the model ranked. The median
  // threshold (2 here) recovers the perfect split.
  std::vector<float> scores{5.0f, 1.0f, 3.0f, 2.0f};
  std::vector<int> labels{1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(Accuracy(scores, labels), 1.0);
  EXPECT_DOUBLE_EQ(F1Score(scores, labels), 1.0);
  // Same ranking shifted all-negative (hinge-style scores) — identical
  // metrics, since the median moves with the batch.
  std::vector<float> shifted{-1.0f, -5.0f, -3.0f, -4.0f};
  EXPECT_DOUBLE_EQ(Accuracy(shifted, labels), 1.0);
  EXPECT_DOUBLE_EQ(F1Score(shifted, labels), 1.0);
}

TEST(TopKMetricsTest, HandComputed) {
  std::vector<int32_t> ranked{7, 3, 9, 1, 5};
  std::unordered_set<int32_t> relevant{3, 5};
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranked, relevant, 2), 0.5);
  EXPECT_DOUBLE_EQ(RecallAtK(ranked, relevant, 2), 0.5);
  EXPECT_DOUBLE_EQ(HitRateAtK(ranked, relevant, 1), 0.0);
  EXPECT_DOUBLE_EQ(HitRateAtK(ranked, relevant, 2), 1.0);
  EXPECT_DOUBLE_EQ(ReciprocalRank(ranked, relevant), 0.5);
  // NDCG@5: hits at ranks 2 and 5 -> dcg = 1/log2(3) + 1/log2(6);
  // ideal = 1/log2(2) + 1/log2(3).
  const double dcg = 1.0 / std::log2(3.0) + 1.0 / std::log2(6.0);
  const double ideal = 1.0 + 1.0 / std::log2(3.0);
  EXPECT_NEAR(NdcgAtK(ranked, relevant, 5), dcg / ideal, 1e-12);
}

TEST(TopKMetricsTest, EdgeCases) {
  std::vector<int32_t> ranked{1, 2, 3};
  std::unordered_set<int32_t> empty;
  EXPECT_DOUBLE_EQ(RecallAtK(ranked, empty, 3), 0.0);
  EXPECT_DOUBLE_EQ(NdcgAtK(ranked, empty, 3), 0.0);
  EXPECT_DOUBLE_EQ(ReciprocalRank(ranked, empty), 0.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranked, {1}, 0), 0.0);
}

TEST(TopKMetricsTest, PrecisionShortPoolDividesByRankedSize) {
  // Regression: a 3-item pool scored at k=10 used to divide by 10,
  // capping precision at 0.3 for a flawless ranking.
  std::vector<int32_t> ranked{1, 2, 3};
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranked, {1, 2, 3}, 10), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranked, {1, 2}, 10), 2.0 / 3.0);
  // k shorter than the pool still divides by k.
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranked, {1, 2}, 2), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK({}, {1}, 5), 0.0);
}

class NdcgMonotoneTest : public ::testing::TestWithParam<size_t> {};

TEST_P(NdcgMonotoneTest, PerfectRankingIsOptimal) {
  // A perfect ranking must have NDCG 1; any swap cannot exceed it.
  const size_t k = GetParam();
  std::vector<int32_t> perfect{0, 1, 2, 3, 4, 5};
  std::unordered_set<int32_t> relevant{0, 1, 2};
  EXPECT_DOUBLE_EQ(NdcgAtK(perfect, relevant, k), 1.0);
  std::vector<int32_t> swapped{3, 1, 2, 0, 4, 5};
  EXPECT_LE(NdcgAtK(swapped, relevant, k), 1.0);
  EXPECT_LT(NdcgAtK(swapped, relevant, k), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Ks, NdcgMonotoneTest, ::testing::Values(3u, 4u, 6u));

// ---- Property tests: bounds, closed forms, empty-input behaviour ------

TEST(MetricProperty, RandomizedRankingsStayInUnitInterval) {
  Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 1 + rng.UniformInt(30);
    std::vector<int32_t> ranked(n);
    for (size_t i = 0; i < n; ++i) ranked[i] = static_cast<int32_t>(i);
    rng.Shuffle(ranked);
    std::unordered_set<int32_t> relevant;
    const size_t num_rel = rng.UniformInt(n + 1);
    for (size_t i = 0; i < num_rel; ++i) {
      relevant.insert(static_cast<int32_t>(rng.UniformInt(n)));
    }
    const size_t k = 1 + rng.UniformInt(n);
    for (double m : {PrecisionAtK(ranked, relevant, k),
                     RecallAtK(ranked, relevant, k),
                     HitRateAtK(ranked, relevant, k),
                     NdcgAtK(ranked, relevant, k),
                     ReciprocalRank(ranked, relevant)}) {
      EXPECT_TRUE(std::isfinite(m));
      EXPECT_GE(m, 0.0);
      EXPECT_LE(m, 1.0);
    }
  }
}

TEST(MetricProperty, RandomizedAucStaysInUnitInterval) {
  Rng rng(31337);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 2 + rng.UniformInt(40);
    std::vector<float> scores(n);
    std::vector<int> labels(n);
    for (size_t i = 0; i < n; ++i) {
      scores[i] = static_cast<float>(rng.Normal());
      labels[i] = rng.Bernoulli(0.5) ? 1 : 0;
    }
    const double auc = Auc(scores, labels);
    EXPECT_TRUE(std::isfinite(auc));
    EXPECT_GE(auc, 0.0);
    EXPECT_LE(auc, 1.0);
  }
}

TEST(MetricProperty, PerfectRankingScoresOne) {
  // All relevant items first -> NDCG = MRR = HitRate = 1, and AUC of
  // positives-above-negatives scores = 1.
  std::vector<int32_t> ranked{4, 2, 9, 1, 7, 3};
  std::unordered_set<int32_t> relevant{4, 2, 9};
  EXPECT_DOUBLE_EQ(NdcgAtK(ranked, relevant, ranked.size()), 1.0);
  EXPECT_DOUBLE_EQ(ReciprocalRank(ranked, relevant), 1.0);
  EXPECT_DOUBLE_EQ(HitRateAtK(ranked, relevant, 1), 1.0);
  EXPECT_DOUBLE_EQ(RecallAtK(ranked, relevant, 3), 1.0);
  std::vector<float> scores{3.0f, 2.5f, 2.0f, 1.0f, 0.5f};
  std::vector<int> labels{1, 1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(Auc(scores, labels), 1.0);
}

TEST(MetricProperty, ReversedRankingMatchesClosedForm) {
  // n = 6 items, |relevant| = 2, all relevant at the *bottom* of the
  // ranking (positions n-1 and n: discounts 1/log2(6) and 1/log2(7)).
  std::vector<int32_t> ranked{10, 11, 12, 13, 0, 1};
  std::unordered_set<int32_t> relevant{0, 1};
  const double dcg = 1.0 / std::log2(6.0) + 1.0 / std::log2(7.0);
  const double ideal = 1.0 + 1.0 / std::log2(3.0);
  EXPECT_NEAR(NdcgAtK(ranked, relevant, 6), dcg / ideal, 1e-12);
  // First relevant at rank n-1 -> MRR = 1/5.
  EXPECT_DOUBLE_EQ(ReciprocalRank(ranked, relevant), 1.0 / 5.0);
  // Every negative outranks every positive -> AUC = 0.
  std::vector<float> scores{3.0f, 2.0f, 1.0f, 0.5f};
  std::vector<int> labels{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(Auc(scores, labels), 0.0);
}

TEST(MetricProperty, EmptyInputsReturnZeroedMetricsNotNaN) {
  const std::vector<int32_t> no_ranking;
  const std::unordered_set<int32_t> no_relevant;
  const std::unordered_set<int32_t> some_relevant{1, 2};
  for (double m : {PrecisionAtK(no_ranking, some_relevant, 5),
                   RecallAtK(no_ranking, some_relevant, 5),
                   HitRateAtK(no_ranking, some_relevant, 5),
                   NdcgAtK(no_ranking, some_relevant, 5),
                   ReciprocalRank(no_ranking, some_relevant),
                   RecallAtK({1, 2, 3}, no_relevant, 3),
                   NdcgAtK({1, 2, 3}, no_relevant, 3)}) {
    EXPECT_FALSE(std::isnan(m));
    EXPECT_DOUBLE_EQ(m, 0.0);
  }
  // AUC degenerates to chance (0.5), never NaN, on empty/one-class input.
  EXPECT_DOUBLE_EQ(Auc({}, {}), 0.5);
  EXPECT_DOUBLE_EQ(Auc({1.0f}, {1}), 0.5);
  // Accuracy/F1 on empty input: zero, not NaN.
  EXPECT_DOUBLE_EQ(Accuracy({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(F1Score({}, {}), 0.0);
}

TEST(TopKMetricsTest, RecallMonotoneInK) {
  std::vector<int32_t> ranked{9, 8, 7, 6, 5, 4, 3, 2, 1, 0};
  std::unordered_set<int32_t> relevant{7, 2, 0};
  double previous = 0.0;
  for (size_t k = 1; k <= ranked.size(); ++k) {
    const double recall = RecallAtK(ranked, relevant, k);
    EXPECT_GE(recall, previous);
    previous = recall;
  }
  EXPECT_DOUBLE_EQ(previous, 1.0);
}

}  // namespace
}  // namespace kgrec
