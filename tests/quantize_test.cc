// Lockdown of the SQ8 quantizer (src/retrieval/quantize.h):
//
//  * RoundHalfEvenToInt golden vectors — the deterministic tie-to-even
//    rounding the encode affine is specified against.
//  * Edge cases: all-equal (zero-range) dimensions, NaN/±inf factor
//    entries, dim 0 and 1, a catalog of one item.
//  * The documented Encode→DecodeRow reconstruction-error bound, per
//    entry, for every factorizable registry model's export.
//  * PrepareQuery: the kDot hi/lo affine decomposition
//    (bias + scale · (128·DotI8(hi) + DotI8(lo))) against its analytic
//    error bound, the kNegSquaredL2 grid encoding (shared delta), and
//    the non-finite query policy.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/recommender.h"
#include "core/registry.h"
#include "data/synthetic.h"
#include "math/kernels.h"
#include "math/rng.h"
#include "retrieval/factors.h"
#include "retrieval/quantize.h"

namespace kgrec {
namespace {

using retrieval::ItemFactors;
using retrieval::QuantizedItemFactors;
using retrieval::RoundHalfEvenToInt;
using retrieval::ScoreKernel;
using retrieval::Sq8Query;

constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

ItemFactors MakeFactors(ScoreKernel kernel, size_t n, size_t dim) {
  ItemFactors factors;
  factors.kernel = kernel;
  factors.items = Matrix(n, dim);
  return factors;
}

ItemFactors RandomFactors(ScoreKernel kernel, size_t n, size_t dim,
                          uint64_t seed) {
  ItemFactors factors = MakeFactors(kernel, n, dim);
  Rng rng(seed);
  for (size_t i = 0; i < factors.items.size(); ++i) {
    factors.items.data()[i] = static_cast<float>(rng.Normal());
  }
  return factors;
}

// ---------------------------------------------------------------------
// QuantizeRounding: the tie-to-even specification.

TEST(QuantizeRounding, GoldenVectors) {
  // Ties land on the even neighbour, both signs; non-ties round to
  // nearest as usual.
  EXPECT_EQ(RoundHalfEvenToInt(0.0), 0);
  EXPECT_EQ(RoundHalfEvenToInt(0.5), 0);
  EXPECT_EQ(RoundHalfEvenToInt(1.5), 2);
  EXPECT_EQ(RoundHalfEvenToInt(2.5), 2);
  EXPECT_EQ(RoundHalfEvenToInt(3.5), 4);
  EXPECT_EQ(RoundHalfEvenToInt(254.5), 254);
  EXPECT_EQ(RoundHalfEvenToInt(-0.5), 0);
  EXPECT_EQ(RoundHalfEvenToInt(-1.5), -2);
  EXPECT_EQ(RoundHalfEvenToInt(-2.5), -2);
  EXPECT_EQ(RoundHalfEvenToInt(-3.5), -4);
  EXPECT_EQ(RoundHalfEvenToInt(2.4999999), 2);
  EXPECT_EQ(RoundHalfEvenToInt(2.5000001), 3);
  EXPECT_EQ(RoundHalfEvenToInt(-2.4999999), -2);
  EXPECT_EQ(RoundHalfEvenToInt(126.49), 126);
  EXPECT_EQ(RoundHalfEvenToInt(126.51), 127);
}

TEST(QuantizeRounding, DoesNotDependOnRoundingDirectionOfRint) {
  // The whole point of the explicit floor/frac form: values exactly
  // between two grid points must be stable however libm/rounding-mode
  // details shift — sweep a dense grid of half-integers.
  for (int i = -512; i <= 512; ++i) {
    const double v = i + 0.5;
    const int64_t r = RoundHalfEvenToInt(v);
    EXPECT_EQ(r % 2, 0) << v;           // always even
    EXPECT_LE(std::abs(r - v), 0.5) << v;  // always a nearest neighbour
  }
}

// ---------------------------------------------------------------------
// QuantizeEncode: grids, degenerate shapes, non-finite policy.

TEST(QuantizeEncode, AllEqualDimensionHasZeroDeltaAndExactDecode) {
  ItemFactors factors = MakeFactors(ScoreKernel::kDot, 5, 3);
  for (size_t i = 0; i < 5; ++i) {
    float* row = factors.items.Row(i);
    row[0] = 2.75f;                          // constant column
    row[1] = static_cast<float>(i) - 2.0f;   // spread column
    row[2] = -1.5f;                          // constant column
  }
  const QuantizedItemFactors q = QuantizedItemFactors::Encode(factors);
  EXPECT_EQ(q.grid_delta()[0], 0.0f);
  EXPECT_GT(q.grid_delta()[1], 0.0f);
  EXPECT_EQ(q.grid_delta()[2], 0.0f);
  std::vector<float> decoded(3);
  for (size_t i = 0; i < 5; ++i) {
    q.DecodeRow(i, decoded);
    // Zero-range columns decode exactly: vmin + 0 * code == the value.
    EXPECT_EQ(decoded[0], 2.75f) << i;
    EXPECT_EQ(decoded[2], -1.5f) << i;
    // The spread column's grid has delta = 4/255; integer row values sit
    // within half a step of their decode.
    EXPECT_NEAR(decoded[1], factors.items.At(i, 1), 4.0f / 255.0f / 2.0f + 1e-5f);
  }
}

TEST(QuantizeEncode, NonFiniteEntriesFollowTheDocumentedPolicy) {
  ItemFactors factors = MakeFactors(ScoreKernel::kDot, 4, 2);
  // Column 0: finite range [-1, 3] plus one NaN, one +inf, one -inf.
  factors.items.At(0, 0) = -1.0f;
  factors.items.At(1, 0) = kNan;
  factors.items.At(2, 0) = kInf;
  factors.items.At(3, 0) = 3.0f;
  // Column 1: -inf among finites.
  factors.items.At(0, 1) = 0.0f;
  factors.items.At(1, 1) = 1.0f;
  factors.items.At(2, 1) = -kInf;
  factors.items.At(3, 1) = 0.5f;

  const QuantizedItemFactors q = QuantizedItemFactors::Encode(factors);
  // Ranges come from the finite entries only.
  EXPECT_EQ(q.grid_min()[0], -1.0f);
  EXPECT_FLOAT_EQ(q.grid_delta()[0], 4.0f / 255.0f);
  EXPECT_EQ(q.grid_min()[1], 0.0f);
  // NaN and -inf map to code 0, +inf to code 255.
  EXPECT_EQ(q.Codes(1)[0], 0);
  EXPECT_EQ(q.Codes(2)[0], 255);
  EXPECT_EQ(q.Codes(2)[1], 0);
  // Decodes are always finite (the re-rank sees the true values).
  std::vector<float> decoded(2);
  for (size_t i = 0; i < 4; ++i) {
    q.DecodeRow(i, decoded);
    EXPECT_TRUE(std::isfinite(decoded[0])) << i;
    EXPECT_TRUE(std::isfinite(decoded[1])) << i;
  }
}

TEST(QuantizeEncode, L2GridSharesOneDeltaAcrossDimensions) {
  // kNegSquaredL2: every column uses the widest column's step (quantize.h
  // — the code-space distance must be proportional to the grid distance),
  // while vmin stays per-dimension. kDot keeps per-dim deltas.
  ItemFactors l2 = MakeFactors(ScoreKernel::kNegSquaredL2, 3, 3);
  ItemFactors dot = MakeFactors(ScoreKernel::kDot, 3, 3);
  for (size_t i = 0; i < 3; ++i) {
    const float x = static_cast<float>(i);
    for (ItemFactors* f : {&l2, &dot}) {
      f->items.At(i, 0) = x;           // range 2
      f->items.At(i, 1) = 10.0f * x;   // range 20 — the widest
      f->items.At(i, 2) = 5.0f + x;    // range 2, offset vmin
    }
  }
  const QuantizedItemFactors ql2 = QuantizedItemFactors::Encode(l2);
  const float shared = 20.0f / 255.0f;
  for (size_t d = 0; d < 3; ++d) {
    EXPECT_FLOAT_EQ(ql2.grid_delta()[d], shared) << d;
  }
  EXPECT_EQ(ql2.grid_min()[0], 0.0f);
  EXPECT_EQ(ql2.grid_min()[2], 5.0f);
  const QuantizedItemFactors qdot = QuantizedItemFactors::Encode(dot);
  EXPECT_FLOAT_EQ(qdot.grid_delta()[0], 2.0f / 255.0f);
  EXPECT_FLOAT_EQ(qdot.grid_delta()[1], 20.0f / 255.0f);
}

TEST(QuantizeEncode, NonfiniteRowsAreRecordedAscending) {
  ItemFactors factors = RandomFactors(ScoreKernel::kDot, 6, 3, 41);
  factors.items.At(1, 2) = kNan;
  factors.items.At(4, 0) = kInf;
  factors.items.At(4, 1) = -kInf;
  const QuantizedItemFactors q = QuantizedItemFactors::Encode(factors);
  const auto nonfinite = q.nonfinite_items();
  ASSERT_EQ(nonfinite.size(), 2u);
  EXPECT_EQ(nonfinite[0], 1);
  EXPECT_EQ(nonfinite[1], 4);
  const QuantizedItemFactors clean =
      QuantizedItemFactors::Encode(RandomFactors(ScoreKernel::kDot, 6, 3, 42));
  EXPECT_TRUE(clean.nonfinite_items().empty());
}

TEST(QuantizeEncode, AllNonFiniteColumnDegradesToZeroGrid) {
  ItemFactors factors = MakeFactors(ScoreKernel::kDot, 2, 1);
  factors.items.At(0, 0) = kNan;
  factors.items.At(1, 0) = kInf;
  const QuantizedItemFactors q = QuantizedItemFactors::Encode(factors);
  EXPECT_EQ(q.grid_min()[0], 0.0f);
  EXPECT_EQ(q.grid_delta()[0], 0.0f);
  EXPECT_EQ(q.Codes(0)[0], 0);
  EXPECT_EQ(q.Codes(1)[0], 255);
}

TEST(QuantizeEncode, DegenerateShapes) {
  // dim 0: encode, decode and query-prep are all well-defined no-ops.
  {
    const ItemFactors factors = MakeFactors(ScoreKernel::kDot, 3, 0);
    const QuantizedItemFactors q = QuantizedItemFactors::Encode(factors);
    EXPECT_EQ(q.dim(), 0u);
    EXPECT_EQ(q.code_bytes(), 0u);
    q.DecodeRow(1, {});
    Sq8Query query;
    q.PrepareQuery({}, &query);
    EXPECT_EQ(query.weights.size(), 0u);
    EXPECT_EQ(query.weights_lo.size(), 0u);
    EXPECT_EQ(query.scale, 0.0f);
    EXPECT_EQ(query.bias, 0.0f);
  }
  // dim 1.
  {
    ItemFactors factors = MakeFactors(ScoreKernel::kDot, 3, 1);
    factors.items.At(0, 0) = -2.0f;
    factors.items.At(1, 0) = 0.0f;
    factors.items.At(2, 0) = 2.0f;
    const QuantizedItemFactors q = QuantizedItemFactors::Encode(factors);
    EXPECT_EQ(q.Codes(0)[0], 0);
    EXPECT_EQ(q.Codes(2)[0], 255);
    std::vector<float> decoded(1);
    q.DecodeRow(1, decoded);
    EXPECT_NEAR(decoded[0], 0.0f, 4.0f / 255.0f / 2.0f + 1e-5f);
  }
  // Catalog of one item: every column is zero-range, decode is exact.
  {
    ItemFactors factors = MakeFactors(ScoreKernel::kNegSquaredL2, 1, 4);
    for (size_t d = 0; d < 4; ++d) {
      factors.items.At(0, d) = 0.25f * static_cast<float>(d) - 1.0f;
    }
    const QuantizedItemFactors q = QuantizedItemFactors::Encode(factors);
    std::vector<float> decoded(4);
    q.DecodeRow(0, decoded);
    for (size_t d = 0; d < 4; ++d) {
      EXPECT_EQ(decoded[d], factors.items.At(0, d)) << d;
    }
  }
}

// ---------------------------------------------------------------------
// QuantizeBound: the documented reconstruction bound, zoo-wide.

void ExpectReconstructionBound(const ItemFactors& factors,
                               const std::string& what) {
  const QuantizedItemFactors q = QuantizedItemFactors::Encode(factors);
  const auto vmin = q.grid_min();
  const auto delta = q.grid_delta();
  std::vector<float> decoded(q.dim());
  for (size_t i = 0; i < q.num_items(); ++i) {
    q.DecodeRow(i, decoded);
    const float* row = factors.items.Row(i);
    for (size_t d = 0; d < q.dim(); ++d) {
      if (!std::isfinite(row[d])) continue;
      // |x - x_hat| <= delta/2 + eps * (|vmin| + 255 * delta): the
      // half-step quantization error plus the float rounding of the
      // decode affine (quantize.h). eps is taken at 2^-22 to cover the
      // affine's two roundings with margin.
      const float grid_mag =
          std::fabs(vmin[d]) + 255.0f * delta[d];
      const float bound = 0.5f * delta[d] + grid_mag / 4194304.0f;
      ASSERT_LE(std::fabs(row[d] - decoded[d]), bound)
          << what << " item " << i << " dim " << d << " x=" << row[d]
          << " x_hat=" << decoded[d] << " delta=" << delta[d];
    }
  }
}

TEST(QuantizeBound, HoldsForRandomFactorsBothKernels) {
  ExpectReconstructionBound(
      RandomFactors(ScoreKernel::kDot, 200, 24, 1311), "dot");
  ExpectReconstructionBound(
      RandomFactors(ScoreKernel::kNegSquaredL2, 200, 24, 1312), "l2");
}

TEST(QuantizeBound, HoldsForEveryFactorizableModelExport) {
  WorldConfig config;
  config.num_users = 20;
  config.num_items = 30;
  config.avg_interactions_per_user = 6.0;
  config.item_relations = {{"genre", 4, 1, 0.9f}};
  config.seed = 616;
  const SyntheticWorld world = GenerateWorld(config);
  Rng rng(13);
  const DataSplit split = RatioSplit(world.interactions, 0.25, rng);
  const UserItemGraph ui_graph = BuildUserItemGraph(world, split.train);
  RecContext ctx;
  ctx.train = &split.train;
  ctx.item_kg = &world.item_kg;
  ctx.user_item_graph = &ui_graph;
  ctx.seed = 29;

  for (const std::string& name : FactorizableMethodNames()) {
    std::unique_ptr<Recommender> model = MakeRecommender(name);
    model->Fit(ctx);
    const DotProductFactors* factors = AsFactorizable(*model);
    ASSERT_NE(factors, nullptr) << name;
    ExpectReconstructionBound(factors->ExportItemFactors(), name);
  }
}

// ---------------------------------------------------------------------
// QuantizeQuery: the prepared-query decompositions.

TEST(QuantizeQuery, DotApproximationStaysWithinItsAnalyticBound) {
  const ItemFactors factors = RandomFactors(ScoreKernel::kDot, 100, 16, 77);
  const QuantizedItemFactors q = QuantizedItemFactors::Encode(factors);
  Rng rng(78);
  std::vector<float> query(16);
  std::vector<float> decoded(16);
  Sq8Query prepared;
  for (int trial = 0; trial < 10; ++trial) {
    for (float& v : query) v = static_cast<float>(rng.Normal());
    q.PrepareQuery(query, &prepared);
    ASSERT_EQ(prepared.weights.size(), 16u);
    ASSERT_EQ(prepared.weights_lo.size(), 16u);
    for (size_t i = 0; i < q.num_items(); ++i) {
      const int64_t idot =
          128 * static_cast<int64_t>(
                    kernels::DotI8(prepared.weights.data(), q.Codes(i), 16)) +
          kernels::DotI8(prepared.weights_lo.data(), q.Codes(i), 16);
      const float approx = q.ApproxScore(prepared, idot);
      // Against the *decoded* row the only approximation left is the
      // 15-bit weight rounding: per dim |w - scale*(128*hi+lo)| <=
      // scale/2, each scaled by a code <= 255 — plus float-arithmetic
      // slack on the expansion.
      q.DecodeRow(i, decoded);
      const float exact = kernels::Dot(query.data(), decoded.data(), 16);
      const float bound =
          0.5f * prepared.scale * 255.0f * 16.0f + 1e-3f * std::fabs(exact) +
          1e-4f;
      EXPECT_LE(std::fabs(approx - exact), bound)
          << "trial " << trial << " item " << i;
    }
  }
}

TEST(QuantizeQuery, HiLoSplitReassemblesTheFifteenBitWeight) {
  // One dimension with a huge delta (an outlier-stretched column) next
  // to ordinary ones: a single i8 weight vector would collapse to
  // one-hot here. The hi/lo split must keep every |w[d]| >= max|w|/32512
  // at a nonzero combined weight.
  ItemFactors factors = MakeFactors(ScoreKernel::kDot, 2, 4);
  factors.items.At(0, 0) = 0.0f;
  factors.items.At(1, 0) = 1000.0f;  // delta[0] ~ 3.92
  for (size_t d = 1; d < 4; ++d) {
    factors.items.At(0, d) = 0.0f;
    factors.items.At(1, d) = 1.0f;  // delta[d] ~ 0.0039
  }
  const QuantizedItemFactors q = QuantizedItemFactors::Encode(factors);
  const std::vector<float> query{1.0f, 1.0f, 1.0f, 1.0f};
  Sq8Query prepared;
  q.PrepareQuery(query, &prepared);
  for (size_t d = 0; d < 4; ++d) {
    const int64_t combined = 128 * static_cast<int64_t>(prepared.weights[d]) +
                             prepared.weights_lo[d];
    EXPECT_NE(combined, 0) << d;
    // The reassembled integer weight is the round-half-even image of
    // w[d]/scale, so it stays within half a unit of it.
    const double w = static_cast<double>(query[d]) * q.grid_delta()[d];
    EXPECT_LE(std::fabs(static_cast<double>(combined) -
                        w / static_cast<double>(prepared.scale)),
              0.5 + 1e-6)
        << d;
    EXPECT_GE(prepared.weights[d], -127);
    EXPECT_LE(prepared.weights[d], 127);
    EXPECT_GE(prepared.weights_lo[d], -64);
    EXPECT_LE(prepared.weights_lo[d], 63);
  }
  // The anchor dimension maps to exactly 16256 = 127 * 128.
  EXPECT_EQ(prepared.weights[0], 127);
  EXPECT_EQ(prepared.weights_lo[0], 0);
}

TEST(QuantizeQuery, L2QueryLandsOnTheItemGrid) {
  const ItemFactors factors =
      RandomFactors(ScoreKernel::kNegSquaredL2, 50, 8, 99);
  const QuantizedItemFactors q = QuantizedItemFactors::Encode(factors);
  Sq8Query prepared;
  // A query equal to item 7's decoded row must encode to item 7's codes
  // exactly — integer distance 0 to itself.
  std::vector<float> decoded(8);
  q.DecodeRow(7, decoded);
  q.PrepareQuery(decoded, &prepared);
  ASSERT_EQ(prepared.codes.size(), 8u);
  EXPECT_EQ(std::memcmp(prepared.codes.data(), q.Codes(7), 8), 0);
  EXPECT_EQ(kernels::SquaredDistanceI8(prepared.codes.data(), q.Codes(7), 8),
            0);
}

TEST(QuantizeQuery, ZeroAndNonFiniteQueriesAreSafe) {
  const ItemFactors factors = RandomFactors(ScoreKernel::kDot, 20, 4, 55);
  const QuantizedItemFactors q = QuantizedItemFactors::Encode(factors);
  Sq8Query prepared;

  const std::vector<float> zero(4, 0.0f);
  q.PrepareQuery(zero, &prepared);
  EXPECT_EQ(prepared.scale, 0.0f);
  EXPECT_EQ(prepared.bias, 0.0f);
  for (int8_t w : prepared.weights) EXPECT_EQ(w, 0);
  for (int8_t w : prepared.weights_lo) EXPECT_EQ(w, 0);

  // Non-finite query entries are treated as 0 in the approximate scan:
  // the prepared query must stay finite.
  const std::vector<float> weird{kNan, 1.0f, -kInf, kInf};
  q.PrepareQuery(weird, &prepared);
  EXPECT_TRUE(std::isfinite(prepared.scale));
  EXPECT_TRUE(std::isfinite(prepared.bias));
  const int64_t idot =
      128 * static_cast<int64_t>(
                kernels::DotI8(prepared.weights.data(), q.Codes(0), 4)) +
      kernels::DotI8(prepared.weights_lo.data(), q.Codes(0), 4);
  EXPECT_TRUE(std::isfinite(q.ApproxScore(prepared, idot)));
}

TEST(QuantizeQuery, CodeBytesAreAQuarterOfTheFloatMatrix) {
  const ItemFactors factors = RandomFactors(ScoreKernel::kDot, 128, 32, 5);
  const QuantizedItemFactors q = QuantizedItemFactors::Encode(factors);
  EXPECT_EQ(q.code_bytes(), 128u * 32u);
  EXPECT_EQ(q.code_bytes() * 4, factors.items.size() * sizeof(float));
  EXPECT_EQ(q.grid_bytes(), 2u * 32u * sizeof(float));
}

}  // namespace
}  // namespace kgrec
