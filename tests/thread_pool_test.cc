// Tests of the core/thread_pool subsystem: scheduling, ParallelFor
// coverage, Status/exception propagation (a failing worker must surface
// as a Status, never hang), and Rng::Fork stream-splitting properties.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/thread_pool.h"
#include "math/rng.h"

namespace kgrec {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // nothing submitted: must not hang
  EXPECT_EQ(pool.num_threads(), 2u);
}

TEST(ThreadPool, ClampsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (size_t threads : {1u, 2u, 8u}) {
    std::vector<int> hits(1000, 0);
    const Status status =
        ParallelFor(hits.size(), threads, [&](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) ++hits[i];
          return Status::OK();
        });
    ASSERT_TRUE(status.ok());
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
    for (int h : hits) EXPECT_EQ(h, 1);
  }
}

TEST(ParallelForTest, EmptyRangeIsOk) {
  const Status status = ParallelFor(
      0, 8, [](size_t, size_t) { return Status::Internal("never runs"); });
  EXPECT_TRUE(status.ok());
}

TEST(ParallelForTest, PropagatesStatusInsteadOfHanging) {
  for (size_t threads : {1u, 2u, 8u}) {
    std::atomic<int> visited{0};
    const Status status =
        ParallelFor(64, threads, [&](size_t begin, size_t end) -> Status {
          visited.fetch_add(static_cast<int>(end - begin));
          if (begin == 0) return Status::InvalidArgument("chunk zero failed");
          return Status::OK();
        });
    EXPECT_FALSE(status.ok()) << "threads=" << threads;
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(status.message(), "chunk zero failed");
    // Every chunk still ran to completion: no abandoned work, no hang.
    EXPECT_EQ(visited.load(), 64);
  }
}

TEST(ParallelForTest, ReportsFirstFailureInChunkOrder) {
  // Two failing chunks: the lowest-index chunk's Status must win no
  // matter which thread finishes first.
  for (int trial = 0; trial < 10; ++trial) {
    const Status status =
        ParallelFor(100, 4, [&](size_t begin, size_t) -> Status {
          if (begin < 50) {
            return Status::InvalidArgument("low chunk");
          }
          return Status::Internal("high chunk");
        });
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.message(), "low chunk");
  }
}

TEST(ParallelForTest, ConvertsThrowingTaskToStatus) {
  for (size_t threads : {1u, 2u, 8u}) {
    const Status status =
        ParallelFor(32, threads, [](size_t begin, size_t) -> Status {
          if (begin == 0) throw std::runtime_error("injected failure");
          return Status::OK();
        });
    ASSERT_FALSE(status.ok()) << "threads=" << threads;
    EXPECT_EQ(status.code(), StatusCode::kInternal);
    EXPECT_NE(status.message().find("injected failure"), std::string::npos);
  }
}

TEST(ParallelForTest, ConvertsNonStdExceptionToStatus) {
  const Status status =
      ParallelFor(8, 4, [](size_t, size_t) -> Status { throw 42; });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

TEST(ParallelForTest, PooledOverloadMatchesFreeFunction) {
  ThreadPool pool(4);
  std::vector<int> a(257, 0), b(257, 0);
  ASSERT_TRUE(ParallelFor(pool, a.size(), [&](size_t begin, size_t end) {
                for (size_t i = begin; i < end; ++i) a[i] = static_cast<int>(i);
                return Status::OK();
              }).ok());
  ASSERT_TRUE(ParallelFor(b.size(), 4, [&](size_t begin, size_t end) {
                for (size_t i = begin; i < end; ++i) b[i] = static_cast<int>(i);
                return Status::OK();
              }).ok());
  EXPECT_EQ(a, b);
}

TEST(RngFork, IsDeterministicAndOrderIndependent) {
  Rng base(1234);
  Rng fork_a1 = base.Fork(7);
  Rng fork_b = base.Fork(8);
  Rng fork_a2 = base.Fork(7);  // same id after another fork: same stream
  for (int i = 0; i < 16; ++i) {
    const uint64_t expected = fork_a1.NextUint64();
    EXPECT_EQ(expected, fork_a2.NextUint64());
  }
  (void)fork_b;
}

TEST(RngFork, DoesNotAdvanceParent) {
  Rng with_forks(99);
  Rng without_forks(99);
  (void)with_forks.Fork(1);
  (void)with_forks.Fork(2);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(with_forks.NextUint64(), without_forks.NextUint64());
  }
}

TEST(RngFork, AdjacentStreamsDecorrelate) {
  // Weak but effective smoke check: the first draws of 128 adjacent
  // streams should be distinct and roughly uniform.
  Rng base(5);
  std::vector<uint64_t> first_draws;
  double mean = 0.0;
  for (uint64_t id = 0; id < 128; ++id) {
    Rng stream = base.Fork(id);
    first_draws.push_back(stream.NextUint64());
    mean += stream.Uniform();
  }
  mean /= 128.0;
  std::sort(first_draws.begin(), first_draws.end());
  EXPECT_EQ(std::unique(first_draws.begin(), first_draws.end()),
            first_draws.end());
  EXPECT_NEAR(mean, 0.5, 0.15);
}

TEST(RngFork, DifferentParentsYieldDifferentStreams) {
  Rng a(1), b(2);
  EXPECT_NE(a.Fork(0).NextUint64(), b.Fork(0).NextUint64());
}

}  // namespace
}  // namespace kgrec
