// End-to-end training of the embedding-based family (survey Section 4.1)
// on a small synthetic world: every model must clearly beat chance.

#include <gtest/gtest.h>

#include "core/recommender.h"
#include "data/synthetic.h"
#include "embed/cfkg.h"
#include "embed/cke.h"
#include "embed/dkn.h"
#include "embed/ktup.h"
#include "embed/mkr.h"
#include "eval/protocol.h"

namespace kgrec {
namespace {

struct Fixture {
  SyntheticWorld world;
  DataSplit split;
  UserItemGraph ui_graph;

  Fixture() {
    WorldConfig config;
    config.num_users = 150;
    config.num_items = 250;
    config.avg_interactions_per_user = 16.0;
    config.item_relations = {{"genre", 10, 1, 0.9f}, {"studio", 25, 1, 0.7f}};
    config.seed = 31;
    world = GenerateWorld(config);
    Rng rng(6);
    split = RatioSplit(world.interactions, 0.2, rng);
    ui_graph = BuildUserItemGraph(world, split.train);
  }
};

Fixture& SharedFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

double TrainAndAuc(Recommender& model) {
  Fixture& f = SharedFixture();
  RecContext ctx;
  ctx.train = &f.split.train;
  ctx.item_kg = &f.world.item_kg;
  ctx.user_item_graph = &f.ui_graph;
  ctx.seed = 17;
  model.Fit(ctx);
  Rng rng(88);
  return EvaluateCtr(model, f.split.train, f.split.test, rng).auc;
}

TEST(IntegrationEmbed, CkeLearns) {
  CkeConfig config;
  config.epochs = 20;
  CkeRecommender model(config);
  EXPECT_GT(TrainAndAuc(model), 0.65);
}

TEST(IntegrationEmbed, CfkgLearns) {
  CfkgConfig config;
  config.epochs = 20;
  CfkgRecommender model(config);
  EXPECT_GT(TrainAndAuc(model), 0.6);
}

TEST(IntegrationEmbed, KtupLearns) {
  KtupConfig config;
  config.epochs = 20;
  KtupRecommender model(config);
  EXPECT_GT(TrainAndAuc(model), 0.65);
}

TEST(IntegrationEmbed, MkrLearns) {
  MkrConfig config;
  config.epochs = 15;
  MkrRecommender model(config);
  EXPECT_GT(TrainAndAuc(model), 0.65);
}

TEST(IntegrationEmbed, DknLearns) {
  DknConfig config;
  config.epochs = 8;
  DknRecommender model(config);
  EXPECT_GT(TrainAndAuc(model), 0.6);
}

}  // namespace
}  // namespace kgrec
