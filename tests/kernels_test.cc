// Lockdown of the shared kernel layer (math/kernels.h): bitwise equality
// of every dispatched kernel against the scalar reference across a dense
// sweep of lengths, a golden test pinning the fixed-block accumulation
// order itself (including a case where blocked != sequential), the fused
// CosineSimilarity zero-vector guard, gradient re-checks of the ops that
// were rewired onto the kernels, and the 64-byte alignment guarantee of
// Matrix / nn::Tensor backing stores.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "math/dense.h"
#include "math/kernels.h"
#include "math/rng.h"
#include "nn/gradcheck.h"
#include "nn/init.h"
#include "nn/ops.h"
#include "nn/tensor.h"

namespace kgrec {
namespace {

/// Bitwise float equality (distinguishes -0.0f from 0.0f and compares
/// NaNs by payload, which EXPECT_EQ on floats cannot).
bool BitEq(float a, float b) {
  uint32_t ua, ub;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

#define EXPECT_BITEQ(a, b)                                              \
  EXPECT_PRED2(BitEq, (a), (b)) << "lhs=" << (a) << " rhs=" << (b)

void ExpectAllBitEq(const std::vector<float>& a, const std::vector<float>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_BITEQ(a[i], b[i]) << "at index " << i;
  }
}

std::vector<float> RandomVec(size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.Uniform() * 2.0 - 1.0);
  return v;
}

constexpr size_t kMaxLen = 67;  // Exercises 0, tails 1-3, and 16+ blocks.

TEST(Kernels, ModeIsKnown) {
  const std::string mode = kernels::Mode();
  EXPECT_TRUE(mode == "avx2" || mode == "sse2" || mode == "scalar") << mode;
}

TEST(Kernels, DotBitwiseMatchesRefAllLengths) {
  Rng rng(11);
  for (size_t n = 0; n <= kMaxLen; ++n) {
    const std::vector<float> a = RandomVec(n, rng);
    const std::vector<float> b = RandomVec(n, rng);
    EXPECT_BITEQ(kernels::Dot(a.data(), b.data(), n),
                 kernels::ref::Dot(a.data(), b.data(), n))
        << "n=" << n;
  }
}

// Golden lockdown of the fixed-block order: the contract is a documented
// numerical specification, so compute it longhand here and require the
// reference (and therefore every dispatched path) to reproduce it.
TEST(Kernels, DotFixedBlockGoldenOrder) {
  Rng rng(12);
  for (size_t n : {size_t{5}, size_t{8}, size_t{23}, size_t{64}}) {
    const std::vector<float> a = RandomVec(n, rng);
    const std::vector<float> b = RandomVec(n, rng);
    float lane[4] = {0.0f, 0.0f, 0.0f, 0.0f};
    const size_t blocked = (n / 4) * 4;
    for (size_t i = 0; i < blocked; ++i) lane[i % 4] += a[i] * b[i];
    float expected = (lane[0] + lane[2]) + (lane[1] + lane[3]);
    for (size_t i = blocked; i < n; ++i) expected += a[i] * b[i];
    EXPECT_BITEQ(kernels::ref::Dot(a.data(), b.data(), n), expected)
        << "n=" << n;
    EXPECT_BITEQ(kernels::Dot(a.data(), b.data(), n), expected) << "n=" << n;
  }
}

// The blocked order is a *different* float sum than naive left-to-right —
// pin an input where they disagree, so a regression to sequential
// accumulation cannot slip through the equality tests above.
TEST(Kernels, DotBlockedDiffersFromSequentialSomewhere) {
  Rng rng(13);
  bool found_difference = false;
  for (int trial = 0; trial < 64 && !found_difference; ++trial) {
    const std::vector<float> a = RandomVec(48, rng);
    const std::vector<float> b = RandomVec(48, rng);
    float sequential = 0.0f;
    for (size_t i = 0; i < a.size(); ++i) sequential += a[i] * b[i];
    found_difference =
        !BitEq(sequential, kernels::ref::Dot(a.data(), b.data(), a.size()));
  }
  EXPECT_TRUE(found_difference)
      << "blocked accumulation never diverged from sequential — the "
         "reference may have regressed to a left-to-right loop";
}

TEST(Kernels, Dot4AndDotBatchMatchSingleDot) {
  Rng rng(14);
  for (size_t n = 0; n <= kMaxLen; ++n) {
    const std::vector<float> a = RandomVec(n, rng);
    std::vector<std::vector<float>> rows_data;
    for (int q = 0; q < 7; ++q) rows_data.push_back(RandomVec(n, rng));
    std::vector<const float*> rows;
    for (const auto& r : rows_data) rows.push_back(r.data());

    float out4[4];
    kernels::Dot4(a.data(), rows.data(), n, out4);
    for (int q = 0; q < 4; ++q) {
      EXPECT_BITEQ(out4[q], kernels::Dot(a.data(), rows[q], n))
          << "n=" << n << " q=" << q;
    }

    std::vector<float> out(rows.size());
    kernels::DotBatch(a.data(), rows.data(), rows.size(), n, out.data());
    std::vector<float> ref_out(rows.size());
    kernels::ref::DotBatch(a.data(), rows.data(), rows.size(), n,
                           ref_out.data());
    for (size_t q = 0; q < rows.size(); ++q) {
      EXPECT_BITEQ(out[q], kernels::Dot(a.data(), rows[q], n))
          << "n=" << n << " q=" << q;
    }
    ExpectAllBitEq(out, ref_out);
  }
}

TEST(Kernels, AxpyScaleBitwiseMatchRef) {
  Rng rng(15);
  for (size_t n = 0; n <= kMaxLen; ++n) {
    const std::vector<float> x = RandomVec(n, rng);
    std::vector<float> y = RandomVec(n, rng);
    std::vector<float> y_ref = y;
    kernels::Axpy(0.37f, x.data(), y.data(), n);
    kernels::ref::Axpy(0.37f, x.data(), y_ref.data(), n);
    ExpectAllBitEq(y, y_ref);

    std::vector<float> s = RandomVec(n, rng);
    std::vector<float> s_ref = s;
    kernels::Scale(s.data(), n, -1.73f);
    kernels::ref::Scale(s_ref.data(), n, -1.73f);
    ExpectAllBitEq(s, s_ref);
  }
}

TEST(Kernels, SquaredDistanceAndCosineBitwiseMatchRef) {
  Rng rng(16);
  for (size_t n = 0; n <= kMaxLen; ++n) {
    const std::vector<float> a = RandomVec(n, rng);
    const std::vector<float> b = RandomVec(n, rng);
    EXPECT_BITEQ(kernels::SquaredDistance(a.data(), b.data(), n),
                 kernels::ref::SquaredDistance(a.data(), b.data(), n))
        << "n=" << n;
    EXPECT_BITEQ(kernels::CosineSimilarity(a.data(), b.data(), n),
                 kernels::ref::CosineSimilarity(a.data(), b.data(), n))
        << "n=" << n;
  }
}

// Regression for the fused single-pass CosineSimilarity: the all-zero
// guard must survive the fusion (0/0 would otherwise yield NaN), and the
// fused value must agree with the three-pass formula it replaced.
TEST(Kernels, CosineSimilarityZeroVectorGuard) {
  const std::vector<float> zero(16, 0.0f);
  std::vector<float> v(16, 0.0f);
  v[3] = 2.5f;
  EXPECT_BITEQ(kernels::CosineSimilarity(zero.data(), v.data(), 16), 0.0f);
  EXPECT_BITEQ(kernels::CosineSimilarity(v.data(), zero.data(), 16), 0.0f);
  EXPECT_BITEQ(kernels::CosineSimilarity(zero.data(), zero.data(), 16), 0.0f);
  EXPECT_BITEQ(dense::CosineSimilarity(zero.data(), v.data(), 16), 0.0f);
  // Identical vectors: cosine is dot/(|v|*|v|), within float rounding of 1.
  EXPECT_NEAR(kernels::CosineSimilarity(v.data(), v.data(), 16), 1.0f, 1e-6f);
}

TEST(Kernels, MatMulFamilyBitwiseMatchesRef) {
  Rng rng(17);
  for (size_t m : {size_t{1}, size_t{3}, size_t{8}}) {
    for (size_t k : {size_t{1}, size_t{5}, size_t{16}, size_t{33}}) {
      for (size_t n : {size_t{1}, size_t{2}, size_t{17}, size_t{40}}) {
        const std::vector<float> a = RandomVec(m * k, rng);
        const std::vector<float> b = RandomVec(k * n, rng);
        std::vector<float> c(m * n), c_ref(m * n);
        kernels::MatMul(a.data(), b.data(), c.data(), m, k, n);
        kernels::ref::MatMul(a.data(), b.data(), c_ref.data(), m, k, n);
        ExpectAllBitEq(c, c_ref);

        // A (m x k), B^T form with B (n x k); overwrite then accumulate.
        const std::vector<float> bt = RandomVec(n * k, rng);
        std::vector<float> d = RandomVec(m * n, rng);
        std::vector<float> d_ref = d;
        kernels::MatMulTransposeB(a.data(), bt.data(), d.data(), m, k, n,
                                  /*accumulate=*/true);
        kernels::ref::MatMulTransposeB(a.data(), bt.data(), d_ref.data(), m,
                                       k, n, /*accumulate=*/true);
        ExpectAllBitEq(d, d_ref);
        kernels::MatMulTransposeB(a.data(), bt.data(), d.data(), m, k, n);
        kernels::ref::MatMulTransposeB(a.data(), bt.data(), d_ref.data(), m,
                                       k, n);
        ExpectAllBitEq(d, d_ref);
        // Each overwritten entry is a fixed-block dot of the two rows.
        for (size_t i = 0; i < m; ++i) {
          for (size_t j = 0; j < n; ++j) {
            EXPECT_BITEQ(d[i * n + j],
                         kernels::Dot(a.data() + i * k, bt.data() + j * k, k));
          }
        }

        // C += A^T * B with A (m x k), B (m x n), C (k x n).
        const std::vector<float> b2 = RandomVec(m * n, rng);
        std::vector<float> e = RandomVec(k * n, rng);
        std::vector<float> e_ref = e;
        kernels::MatMulTransposeAAcc(a.data(), b2.data(), e.data(), m, k, n);
        kernels::ref::MatMulTransposeAAcc(a.data(), b2.data(), e_ref.data(),
                                          m, k, n);
        ExpectAllBitEq(e, e_ref);
      }
    }
  }
}

// dense::MatMul dropped its `if (av == 0.0f) continue;` micro-opt: a
// skipped 0 * x add is observable when x is non-finite. Lock the IEEE
// semantics in so the skip cannot quietly return.
TEST(Kernels, MatMulZeroTimesInfIsNan) {
  const float inf = std::numeric_limits<float>::infinity();
  const std::vector<float> a = {0.0f, 1.0f};   // 1 x 2
  const std::vector<float> b = {inf, 1.0f};    // 2 x 1
  std::vector<float> c(1, -7.0f);
  kernels::MatMul(a.data(), b.data(), c.data(), 1, 2, 1);
  EXPECT_TRUE(std::isnan(c[0])) << "0 * inf must reach the accumulator";
  c[0] = -7.0f;
  dense::MatMul(a.data(), b.data(), c.data(), 1, 2, 1);
  EXPECT_TRUE(std::isnan(c[0]));
}

TEST(Kernels, TranscendentalMapsBitwiseMatchRefAndFormula) {
  Rng rng(18);
  for (size_t n = 0; n <= kMaxLen; ++n) {
    std::vector<float> x = RandomVec(n, rng);
    for (float& v : x) v *= 25.0f;  // Cover the softplus/sigmoid branches.
    std::vector<float> y(n), y_ref(n);

    kernels::SigmoidMap(x.data(), y.data(), n);
    kernels::ref::SigmoidMap(x.data(), y_ref.data(), n);
    ExpectAllBitEq(y, y_ref);

    kernels::TanhMap(x.data(), y.data(), n);
    kernels::ref::TanhMap(x.data(), y_ref.data(), n);
    ExpectAllBitEq(y, y_ref);
    for (size_t i = 0; i < n; ++i) EXPECT_BITEQ(y[i], std::tanh(x[i]));

    kernels::ExpMap(x.data(), y.data(), n);
    kernels::ref::ExpMap(x.data(), y_ref.data(), n);
    ExpectAllBitEq(y, y_ref);
    for (size_t i = 0; i < n; ++i) EXPECT_BITEQ(y[i], std::exp(x[i]));

    kernels::SoftplusMap(x.data(), y.data(), n);
    kernels::ref::SoftplusMap(x.data(), y_ref.data(), n);
    ExpectAllBitEq(y, y_ref);
  }
}

TEST(Kernels, SoftmaxRowsBitwiseMatchesRefAndNormalizes) {
  Rng rng(19);
  for (size_t cols : {size_t{1}, size_t{3}, size_t{8}, size_t{21}}) {
    const size_t rows = 5;
    const std::vector<float> x = RandomVec(rows * cols, rng);
    std::vector<float> y(x.size()), y_ref(x.size());
    kernels::SoftmaxRows(x.data(), y.data(), rows, cols);
    kernels::ref::SoftmaxRows(x.data(), y_ref.data(), rows, cols);
    ExpectAllBitEq(y, y_ref);
    for (size_t r = 0; r < rows; ++r) {
      float sum = 0.0f;
      for (size_t c = 0; c < cols; ++c) sum += y[r * cols + c];
      EXPECT_NEAR(sum, 1.0f, 1e-5f);
    }
  }
}

// dense::* now delegates to the kernels — spot-check the seams.
TEST(Kernels, DenseDelegatesToKernels) {
  Rng rng(20);
  const size_t n = 37;
  const std::vector<float> a = RandomVec(n, rng);
  const std::vector<float> b = RandomVec(n, rng);
  EXPECT_BITEQ(dense::Dot(a.data(), b.data(), n),
               kernels::Dot(a.data(), b.data(), n));
  EXPECT_BITEQ(dense::SquaredDistance(a.data(), b.data(), n),
               kernels::SquaredDistance(a.data(), b.data(), n));
  EXPECT_BITEQ(dense::CosineSimilarity(a.data(), b.data(), n),
               kernels::CosineSimilarity(a.data(), b.data(), n));
  EXPECT_BITEQ(dense::Norm2(a.data(), n),
               std::sqrt(kernels::Dot(a.data(), a.data(), n)));
}

// The ops rewired onto tiled kernels must still pass finite-difference
// gradient checks (the backward closures changed their inner loops).
TEST(Kernels, RewiredOpsPassGradCheck) {
  constexpr double kTol = 2e-3;
  Rng rng(21);
  nn::Tensor a = nn::NormalInit(4, 6, 0.5f, rng);
  nn::Tensor b = nn::NormalInit(6, 5, 0.5f, rng);
  nn::Tensor c = nn::NormalInit(4, 6, 0.5f, rng);
  EXPECT_LT(nn::GradCheck([&] { return nn::Sum(nn::MatMul(a, b)); }, {a, b}),
            kTol);
  EXPECT_LT(
      nn::GradCheck([&] { return nn::Sum(nn::RowwiseDot(a, c)); }, {a, c}),
      kTol);
  EXPECT_LT(nn::GradCheck([&] { return nn::Sum(nn::Softmax(a)); }, {a}),
            kTol);
  EXPECT_LT(nn::GradCheck([&] { return nn::Sum(nn::Sigmoid(a)); }, {a}),
            kTol);
  EXPECT_LT(nn::GradCheck([&] { return nn::Sum(nn::Softplus(a)); }, {a}),
            kTol);
  nn::Tensor x = nn::NormalInit(3, 4, 0.5f, rng);
  nn::Tensor w = nn::NormalInit(3, 16, 0.5f, rng);
  EXPECT_LT(
      nn::GradCheck([&] { return nn::Sum(nn::RowwiseVecMat(x, w)); }, {x, w}),
      kTol);
}

// RowwiseDot is now a first-class fused op — its forward must equal the
// composition it replaced and each row must follow the dot contract.
TEST(Kernels, RowwiseDotForwardMatchesKernelDot) {
  Rng rng(22);
  nn::Tensor a = nn::NormalInit(5, 19, 1.0f, rng);
  nn::Tensor b = nn::NormalInit(5, 19, 1.0f, rng);
  nn::Tensor out = nn::RowwiseDot(a, b);
  ASSERT_EQ(out.rows(), 5u);
  ASSERT_EQ(out.cols(), 1u);
  for (size_t r = 0; r < 5; ++r) {
    EXPECT_BITEQ(out.data()[r],
                 kernels::Dot(a.data() + r * 19, b.data() + r * 19, 19));
  }
}

TEST(Kernels, BackingStoresAre64ByteAligned) {
  for (size_t rows : {size_t{1}, size_t{3}, size_t{17}}) {
    Matrix m(rows, 13);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(m.data()) % 64, 0u);
    nn::Tensor t = nn::Tensor::Zeros(rows, 13, /*requires_grad=*/true);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(t.data()) % 64, 0u);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(t.node()->grad.data()) % 64, 0u);
  }
}

// ---------------------------------------------------------------------
// Int8 kernels (the SQ8 scan layer): dispatched vs reference equality is
// *exact* — integer accumulation, not a block-order contract — so any
// mismatch is an outright bug, including at the extreme byte values.

std::vector<uint8_t> RandomCodes(size_t n, Rng& rng) {
  std::vector<uint8_t> v(n);
  for (uint8_t& x : v) x = static_cast<uint8_t>(rng.UniformInt(256));
  return v;
}

std::vector<int8_t> RandomWeights(size_t n, Rng& rng) {
  std::vector<int8_t> v(n);
  for (int8_t& x : v) {
    x = static_cast<int8_t>(static_cast<int>(rng.UniformInt(256)) - 128);
  }
  return v;
}

TEST(Kernels, DotI8MatchesRefAllLengths) {
  Rng rng(41);
  for (size_t n = 0; n <= kMaxLen; ++n) {
    const std::vector<uint8_t> codes = RandomCodes(n, rng);
    const std::vector<int8_t> weights = RandomWeights(n, rng);
    EXPECT_EQ(kernels::DotI8(weights.data(), codes.data(), n),
              kernels::ref::DotI8(weights.data(), codes.data(), n))
        << "n=" << n;
  }
}

TEST(Kernels, SquaredDistanceI8MatchesRefAllLengths) {
  Rng rng(42);
  for (size_t n = 0; n <= kMaxLen; ++n) {
    const std::vector<uint8_t> a = RandomCodes(n, rng);
    const std::vector<uint8_t> b = RandomCodes(n, rng);
    EXPECT_EQ(kernels::SquaredDistanceI8(a.data(), b.data(), n),
              kernels::ref::SquaredDistanceI8(a.data(), b.data(), n))
        << "n=" << n;
  }
}

TEST(Kernels, I8GoldenValuesAndExtremes) {
  // Longhand golden case.
  const uint8_t codes[5] = {0, 1, 255, 128, 7};
  const int8_t weights[5] = {-128, 127, -1, 64, 0};
  EXPECT_EQ(kernels::DotI8(weights, codes, 5),
            -128 * 0 + 127 * 1 + (-1) * 255 + 64 * 128 + 0 * 7);
  const uint8_t a[3] = {0, 255, 100};
  const uint8_t b[3] = {255, 0, 90};
  EXPECT_EQ(kernels::SquaredDistanceI8(a, b, 3), 255 * 255 + 255 * 255 + 100);

  // Saturation trap: every element at the worst-case magnitude across
  // multiple SIMD blocks. maddubs-style i16 pair saturation would cap
  // these sums; exact widening must not.
  constexpr size_t n = 64;
  std::vector<uint8_t> cmax(n, 255);
  std::vector<int8_t> wmin(n, -128);
  EXPECT_EQ(kernels::DotI8(wmin.data(), cmax.data(), n),
            static_cast<int32_t>(n) * (-128 * 255));
  EXPECT_EQ(kernels::ref::DotI8(wmin.data(), cmax.data(), n),
            static_cast<int32_t>(n) * (-128 * 255));
  std::vector<uint8_t> zeros(n, 0);
  EXPECT_EQ(kernels::SquaredDistanceI8(cmax.data(), zeros.data(), n),
            static_cast<int32_t>(n) * (255 * 255));
}

TEST(Kernels, I8BatchFormsMatchSingleForms) {
  Rng rng(43);
  constexpr size_t n = 33;
  constexpr size_t count = 9;  // exercises any internal 4-wide grouping
  std::vector<std::vector<uint8_t>> storage;
  std::vector<const uint8_t*> rows;
  for (size_t q = 0; q < count; ++q) {
    storage.push_back(RandomCodes(n, rng));
    rows.push_back(storage.back().data());
  }
  const std::vector<int8_t> weights = RandomWeights(n, rng);
  const std::vector<uint8_t> query = RandomCodes(n, rng);

  int32_t out[count], ref_out[count];
  kernels::DotBatchI8(weights.data(), rows.data(), count, n, out);
  kernels::ref::DotBatchI8(weights.data(), rows.data(), count, n, ref_out);
  for (size_t q = 0; q < count; ++q) {
    EXPECT_EQ(out[q], kernels::DotI8(weights.data(), rows[q], n)) << q;
    EXPECT_EQ(out[q], ref_out[q]) << q;
  }
  kernels::SquaredDistanceBatchI8(query.data(), rows.data(), count, n, out);
  kernels::ref::SquaredDistanceBatchI8(query.data(), rows.data(), count, n,
                                       ref_out);
  for (size_t q = 0; q < count; ++q) {
    EXPECT_EQ(out[q], kernels::SquaredDistanceI8(query.data(), rows[q], n))
        << q;
    EXPECT_EQ(out[q], ref_out[q]) << q;
  }
}

TEST(Kernels, DotDualBatchI8MatchesTwoSinglePasses) {
  Rng rng(44);
  // Lengths straddle the 16-wide SIMD step; counts straddle the 4-row
  // blocking (remainder rows 0..3) so every code path is hit.
  for (const size_t n : {size_t{0}, size_t{1}, size_t{15}, size_t{16},
                         size_t{17}, size_t{33}, size_t{64}}) {
    for (const size_t count :
         {size_t{0}, size_t{1}, size_t{3}, size_t{4}, size_t{5}, size_t{9}}) {
      std::vector<std::vector<uint8_t>> storage;
      std::vector<const uint8_t*> rows;
      for (size_t q = 0; q < count; ++q) {
        storage.push_back(RandomCodes(n, rng));
        rows.push_back(storage.back().data());
      }
      const std::vector<int8_t> w_hi = RandomWeights(n, rng);
      const std::vector<int8_t> w_lo = RandomWeights(n, rng);
      std::vector<int32_t> hi(count), lo(count), ref_hi(count), ref_lo(count);
      kernels::DotDualBatchI8(w_hi.data(), w_lo.data(), rows.data(), count, n,
                              hi.data(), lo.data());
      kernels::ref::DotDualBatchI8(w_hi.data(), w_lo.data(), rows.data(),
                                   count, n, ref_hi.data(), ref_lo.data());
      for (size_t q = 0; q < count; ++q) {
        EXPECT_EQ(hi[q], kernels::DotI8(w_hi.data(), rows[q], n))
            << "n=" << n << " q=" << q;
        EXPECT_EQ(lo[q], kernels::DotI8(w_lo.data(), rows[q], n))
            << "n=" << n << " q=" << q;
        EXPECT_EQ(hi[q], ref_hi[q]) << "n=" << n << " q=" << q;
        EXPECT_EQ(lo[q], ref_lo[q]) << "n=" << n << " q=" << q;
      }
    }
  }
}

}  // namespace
}  // namespace kgrec
