// Tests for the Status error-handling type.

#include <gtest/gtest.h>

#include "core/status.h"

namespace kgrec {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::Unavailable("queue full").ToString(),
            "Unavailable: queue full");
  Status s = Status::InvalidArgument("bad triple");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "bad triple");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad triple");
}

Status FailsEarly() {
  KGREC_RETURN_IF_ERROR(Status::NotFound("inner"));
  return Status::Internal("unreachable");
}

TEST(StatusTest, ReturnIfErrorMacro) {
  Status s = FailsEarly();
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace kgrec
