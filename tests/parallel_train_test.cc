// Determinism lockdown of the multi-threaded training paths: training
// with num_threads = 1, 2 and 8 must produce **bitwise identical**
// parameters (KGE substrate, compared via SnapshotParams) and scores
// (model families, compared via Score() grids). The shard layout,
// per-shard counter-forked RNG streams (Rng::Fork) and the ordered
// gradient reduction are all functions of the configuration alone, never
// of the thread count or work order.
//
// This suite (plus parallel_eval_test and thread_pool_test) is re-run by
// the CI matrix under ThreadSanitizer (-DKGREC_SANITIZE=thread).

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/serialize.h"
#include "data/synthetic.h"
#include "embed/cfkg.h"
#include "graph/knowledge_graph.h"
#include "kge/kge_model.h"
#include "kge/kge_trainer.h"
#include "nn/ops.h"
#include "nn/optim.h"
#include "path/kprn.h"
#include "unified/kgat.h"
#include "unified/ripplenet.h"

namespace kgrec {
namespace {

// ---------------------------------------------------------------------
// MiniBatchTrainer unit: a tiny least-squares model whose shard function
// draws per-shard randomness, trained at several thread counts.
// ---------------------------------------------------------------------

struct TrainedToy {
  std::vector<float> weights;
  std::vector<double> losses;
};

TrainedToy TrainToy(size_t num_threads) {
  constexpr size_t kExamples = 24;
  constexpr size_t kFeatures = 4;
  std::vector<float> x(kExamples * kFeatures);
  std::vector<float> y(kExamples);
  Rng data_rng(7);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(data_rng.UniformInt(9)) * 0.25f - 1.0f;
  }
  for (size_t i = 0; i < y.size(); ++i) {
    y[i] = static_cast<float>(data_rng.UniformInt(5)) * 0.5f;
  }

  nn::Tensor w = nn::Tensor::FromData(
      kFeatures, 1, {0.1f, -0.2f, 0.3f, -0.4f}, /*requires_grad=*/true);
  nn::Sgd optimizer({w}, 0.05f);
  nn::MiniBatchTrainer trainer(optimizer, /*shard_size=*/5, num_threads);

  TrainedToy result;
  Rng rng(13);
  for (int step = 0; step < 6; ++step) {
    const Rng batch_rng = rng.Fork(static_cast<uint64_t>(step));
    const double loss = trainer.Step(
        kExamples, batch_rng,
        [&](size_t begin, size_t end, Rng& shard_rng) {
          const size_t n = end - begin;
          std::vector<float> xs(x.begin() + begin * kFeatures,
                                x.begin() + end * kFeatures);
          std::vector<float> ys(n);
          for (size_t i = 0; i < n; ++i) {
            // Per-shard jitter: exercises the counter-forked streams.
            ys[i] = y[begin + i] +
                    static_cast<float>(shard_rng.UniformInt(100)) * 0.001f;
          }
          nn::Tensor features =
              nn::Tensor::FromData(n, kFeatures, std::move(xs));
          nn::Tensor targets = nn::Tensor::FromData(n, 1, std::move(ys));
          nn::Tensor residual = nn::Sub(nn::MatMul(features, w), targets);
          return nn::ScaleBy(nn::Sum(nn::Square(residual)),
                             1.0f / kExamples);
        });
    result.losses.push_back(loss);
  }
  result.weights.assign(w.data(), w.data() + w.size());
  return result;
}

TEST(MiniBatchTrainerTest, BitwiseIdenticalAcrossThreadCounts) {
  const TrainedToy ref = TrainToy(1);
  for (double loss : ref.losses) EXPECT_TRUE(std::isfinite(loss));
  for (size_t threads : {2u, 8u}) {
    const TrainedToy other = TrainToy(threads);
    EXPECT_EQ(other.weights, ref.weights) << threads << " threads";
    EXPECT_EQ(other.losses, ref.losses) << threads << " threads";
  }
}

TEST(MiniBatchTrainerTest, EmptyBatchIsANoOp) {
  nn::Tensor w = nn::Tensor::FromData(2, 1, {1.0f, 2.0f},
                                      /*requires_grad=*/true);
  nn::Sgd optimizer({w}, 0.1f);
  nn::MiniBatchTrainer trainer(optimizer, 4, 2);
  const double loss =
      trainer.Step(0, Rng(1), [&](size_t, size_t, Rng&) -> nn::Tensor {
        ADD_FAILURE() << "shard function must not run for an empty batch";
        return nn::Tensor();
      });
  EXPECT_EQ(loss, 0.0);
  EXPECT_EQ(w.data()[0], 1.0f);
  EXPECT_EQ(w.data()[1], 2.0f);
}

// ---------------------------------------------------------------------
// KGE substrate: all five backends, sharded trainer.
// ---------------------------------------------------------------------

/// The learnable pattern graph of kge_test: entities 0..9 relate to
/// entity (i % 3) + 10 via relation 0 and back via relation 1.
KnowledgeGraph PatternGraph() {
  KnowledgeGraph kg;
  for (int i = 0; i < 13; ++i) kg.AddEntity("e" + std::to_string(i));
  kg.AddRelation("r");
  kg.AddRelation("s");
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(kg.AddTriple(i, 0, 10 + (i % 3)).ok());
    EXPECT_TRUE(kg.AddTriple(10 + (i % 3), 1, i).ok());
  }
  kg.Finalize();
  return kg;
}

struct TrainedKge {
  std::vector<NamedTensor> params;
  float loss = 0.0f;
};

TrainedKge TrainBackend(const std::string& backend, size_t num_threads) {
  KnowledgeGraph kg = PatternGraph();
  Rng rng(21);
  auto model =
      MakeKgeModel(backend, kg.num_entities(), kg.num_relations(), 8, rng);
  KgeTrainConfig config;
  config.epochs = 10;
  config.batch_size = 16;
  config.shard_size = 4;
  config.num_threads = num_threads;
  TrainedKge result;
  result.loss = TrainKge(*model, kg, config);
  result.params = SnapshotParams(model->Params());
  return result;
}

void ExpectBitwiseEqualParams(const std::vector<NamedTensor>& a,
                              const std::vector<NamedTensor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].rows, b[i].rows);
    ASSERT_EQ(a[i].cols, b[i].cols);
    EXPECT_EQ(a[i].data, b[i].data) << "param " << i;
  }
}

class ParallelKgeTrain : public ::testing::TestWithParam<std::string> {};

TEST_P(ParallelKgeTrain, ParamsBitwiseIdenticalAcrossThreadCounts) {
  const TrainedKge ref = TrainBackend(GetParam(), 1);
  ASSERT_FALSE(ref.params.empty());
  EXPECT_TRUE(std::isfinite(ref.loss));
  for (size_t threads : {2u, 8u}) {
    const TrainedKge other = TrainBackend(GetParam(), threads);
    EXPECT_EQ(other.loss, ref.loss) << threads << " threads";
    ExpectBitwiseEqualParams(other.params, ref.params);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, ParallelKgeTrain,
                         ::testing::ValuesIn(KgeModelNames()));

// ---------------------------------------------------------------------
// Model families that opted into threaded training. Trained parameters
// are not exposed, so the bitwise contract is asserted on Score() grids.
// ---------------------------------------------------------------------

struct Fixture {
  SyntheticWorld world;
  DataSplit split;
  UserItemGraph ui_graph;

  Fixture() {
    WorldConfig config;
    config.num_users = 40;
    config.num_items = 60;
    config.avg_interactions_per_user = 10.0;
    config.item_relations = {{"genre", 6, 1, 0.9f}, {"studio", 10, 1, 0.7f}};
    config.seed = 177;
    world = GenerateWorld(config);
    Rng rng(13);
    split = RatioSplit(world.interactions, 0.25, rng);
    ui_graph = BuildUserItemGraph(world, split.train);
  }

  RecContext Context() const {
    RecContext ctx;
    ctx.train = &split.train;
    ctx.item_kg = &world.item_kg;
    ctx.user_item_graph = &ui_graph;
    ctx.seed = 31;
    return ctx;
  }
};

Fixture& SharedFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

std::vector<float> ScoreGrid(const Recommender& model, const Fixture& f) {
  std::vector<float> out;
  const int32_t num_users =
      static_cast<int32_t>(f.split.train.num_users());
  const int32_t num_items =
      static_cast<int32_t>(f.split.train.num_items());
  for (int32_t u = 0; u < num_users; u += 7) {
    for (int32_t i = 0; i < num_items; i += 11) {
      out.push_back(model.Score(u, i));
    }
  }
  return out;
}

template <typename Model, typename Config>
std::vector<float> TrainAndScore(Config config, const Fixture& f) {
  Model model(config);
  model.Fit(f.Context());
  return ScoreGrid(model, f);
}

TEST(ParallelTrainFamilies, CfkgBitwiseIdenticalAcrossThreadCounts) {
  Fixture& f = SharedFixture();
  auto run = [&](size_t threads) {
    CfkgConfig config;
    config.epochs = 4;
    config.num_threads = threads;
    return TrainAndScore<CfkgRecommender>(config, f);
  };
  const std::vector<float> ref = run(1);
  ASSERT_FALSE(ref.empty());
  EXPECT_EQ(run(2), ref);
  EXPECT_EQ(run(8), ref);
}

TEST(ParallelTrainFamilies, RippleNetBitwiseIdenticalAcrossThreadCounts) {
  Fixture& f = SharedFixture();
  auto run = [&](size_t threads) {
    RippleNetConfig config;
    config.epochs = 2;
    config.hop_size = 8;
    config.num_threads = threads;
    return TrainAndScore<RippleNetRecommender>(config, f);
  };
  const std::vector<float> ref = run(1);
  ASSERT_FALSE(ref.empty());
  EXPECT_EQ(run(2), ref);
  EXPECT_EQ(run(8), ref);
}

TEST(ParallelTrainFamilies, KgatBitwiseIdenticalAcrossThreadCounts) {
  Fixture& f = SharedFixture();
  auto run = [&](size_t threads) {
    KgatConfig config;
    config.epochs = 2;
    config.batch_size = 128;
    config.num_threads = threads;
    return TrainAndScore<KgatRecommender>(config, f);
  };
  const std::vector<float> ref = run(1);
  ASSERT_FALSE(ref.empty());
  EXPECT_EQ(run(2), ref);
  EXPECT_EQ(run(8), ref);
}

TEST(ParallelTrainFamilies, KprnBitwiseIdenticalAcrossThreadCounts) {
  Fixture& f = SharedFixture();
  auto run = [&](size_t threads) {
    KprnConfig config;
    config.epochs = 1;
    config.num_threads = threads;
    return TrainAndScore<KprnRecommender>(config, f);
  };
  const std::vector<float> ref = run(1);
  ASSERT_FALSE(ref.empty());
  EXPECT_EQ(run(2), ref);
  EXPECT_EQ(run(8), ref);
}

TEST(ParallelTrainFamilies, LegacySerialKgeModeIsTheDefault) {
  // num_threads = 0 must keep the historical single-stream float
  // sequence; the sharded mode (num_threads >= 1) draws different
  // negative streams, so on a non-degenerate world the two usually
  // disagree. This guards against silently rerouting the default.
  KgeTrainConfig config;
  EXPECT_EQ(config.num_threads, 0u);
  CfkgConfig cfkg;
  EXPECT_EQ(cfkg.num_threads, 0u);
  RippleNetConfig ripple;
  EXPECT_EQ(ripple.num_threads, 0u);
}

}  // namespace
}  // namespace kgrec
