// Unit tests for the math substrate: RNG, dense kernels, sparse CSR,
// top-k selection, k-means and NMF.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "math/dense.h"
#include "math/kmeans.h"
#include "math/nmf.h"
#include "math/rng.h"
#include "math/sparse.h"
#include "math/topk.h"

namespace kgrec {
namespace {

TEST(Rng, DeterministicBySeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
  bool any_different = false;
  Rng a2(42);
  for (int i = 0; i < 100; ++i) {
    if (a2.NextUint64() != c.NextUint64()) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(Rng, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const uint64_t k = rng.UniformInt(7);
    EXPECT_LT(k, 7u);
  }
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(2);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5000; ++i) ++counts[rng.UniformInt(5)];
  for (int c : counts) EXPECT_GT(c, 800);
}

TEST(Rng, NormalMoments) {
  Rng rng(3);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(4);
  std::vector<double> weights{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 4000; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0]);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.6);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(5);
  for (size_t k : {0u, 1u, 5u, 50u, 100u}) {
    std::vector<size_t> sample = rng.SampleWithoutReplacement(100, k);
    EXPECT_EQ(sample.size(), k);
    std::sort(sample.begin(), sample.end());
    EXPECT_EQ(std::unique(sample.begin(), sample.end()), sample.end());
    for (size_t v : sample) EXPECT_LT(v, 100u);
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(6);
  std::vector<int> v(20);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Dense, DotAxpyNorm) {
  const float a[] = {1, 2, 3};
  float b[] = {4, 5, 6};
  EXPECT_FLOAT_EQ(dense::Dot(a, b, 3), 32.0f);
  dense::Axpy(2.0f, a, b, 3);
  EXPECT_FLOAT_EQ(b[0], 6.0f);
  EXPECT_FLOAT_EQ(b[2], 12.0f);
  EXPECT_FLOAT_EQ(dense::Norm2(a, 3), std::sqrt(14.0f));
  EXPECT_FLOAT_EQ(dense::SquaredDistance(a, a, 3), 0.0f);
}

TEST(Dense, MatMulAgainstHand) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  const float a[] = {1, 2, 3, 4};
  const float b[] = {5, 6, 7, 8};
  float c[4];
  dense::MatMul(a, b, c, 2, 2, 2);
  EXPECT_FLOAT_EQ(c[0], 19.0f);
  EXPECT_FLOAT_EQ(c[1], 22.0f);
  EXPECT_FLOAT_EQ(c[2], 43.0f);
  EXPECT_FLOAT_EQ(c[3], 50.0f);
  // A * B^T with B stored row-major as (n x k).
  float d[4];
  dense::MatMulTransposeB(a, b, d, 2, 2, 2);
  EXPECT_FLOAT_EQ(d[0], 1 * 5 + 2 * 6);
  EXPECT_FLOAT_EQ(d[1], 1 * 7 + 2 * 8);
}

TEST(Dense, CosineSimilarity) {
  const float a[] = {1, 0};
  const float b[] = {0, 1};
  const float c[] = {2, 0};
  const float zero[] = {0, 0};
  EXPECT_FLOAT_EQ(dense::CosineSimilarity(a, b, 2), 0.0f);
  EXPECT_FLOAT_EQ(dense::CosineSimilarity(a, c, 2), 1.0f);
  EXPECT_FLOAT_EQ(dense::CosineSimilarity(a, zero, 2), 0.0f);
}

TEST(Sparse, FromTripletsMergesDuplicates) {
  CsrMatrix m = CsrMatrix::FromTriplets(
      2, 3, {{0, 1, 1.0f}, {0, 1, 2.0f}, {1, 2, 4.0f}, {0, 0, 1.0f}});
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_FLOAT_EQ(m.At(0, 1), 3.0f);
  EXPECT_FLOAT_EQ(m.At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(m.At(1, 2), 4.0f);
  EXPECT_FLOAT_EQ(m.At(1, 0), 0.0f);
  EXPECT_DOUBLE_EQ(m.Sum(), 8.0);
}

TEST(Sparse, MultiplyMatchesDense) {
  Rng rng(7);
  std::vector<std::tuple<int32_t, int32_t, float>> ta, tb;
  for (int i = 0; i < 30; ++i) {
    ta.emplace_back(rng.UniformInt(6), rng.UniformInt(5),
                    static_cast<float>(rng.Uniform()));
    tb.emplace_back(rng.UniformInt(5), rng.UniformInt(4),
                    static_cast<float>(rng.Uniform()));
  }
  CsrMatrix a = CsrMatrix::FromTriplets(6, 5, ta);
  CsrMatrix b = CsrMatrix::FromTriplets(5, 4, tb);
  CsrMatrix c = a.Multiply(b);
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      float expected = 0.0f;
      for (size_t k = 0; k < 5; ++k) expected += a.At(i, k) * b.At(k, j);
      EXPECT_NEAR(c.At(i, j), expected, 1e-5f);
    }
  }
}

TEST(Sparse, TransposeRoundTrip) {
  CsrMatrix m = CsrMatrix::FromTriplets(
      3, 4, {{0, 3, 1.5f}, {2, 1, -2.0f}, {1, 0, 0.5f}});
  CsrMatrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 4u);
  EXPECT_EQ(t.cols(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_FLOAT_EQ(m.At(i, j), t.At(j, i));
    }
  }
}

TEST(Sparse, MultiplyVector) {
  CsrMatrix m =
      CsrMatrix::FromTriplets(2, 3, {{0, 0, 1.0f}, {0, 2, 2.0f}, {1, 1, 3.0f}});
  const float x[] = {1.0f, 2.0f, 3.0f};
  float y[2];
  m.MultiplyVector(x, y);
  EXPECT_FLOAT_EQ(y[0], 7.0f);
  EXPECT_FLOAT_EQ(y[1], 6.0f);
}

TEST(TopK, OrderAndTies) {
  std::vector<float> scores{1.0f, 5.0f, 5.0f, 2.0f, 0.0f};
  std::vector<int32_t> top = TopKIndices(scores, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1);  // tie broken toward lower index
  EXPECT_EQ(top[1], 2);
  EXPECT_EQ(top[2], 3);
  EXPECT_EQ(TopKIndices(scores, 100).size(), scores.size());
  auto scored = TopKScored(scores, 2);
  EXPECT_FLOAT_EQ(scored[0].second, 5.0f);
}

TEST(KMeans, SeparatesObviousClusters) {
  Rng rng(8);
  Matrix points(40, 2);
  for (int i = 0; i < 20; ++i) {
    points.At(i, 0) = static_cast<float>(rng.Normal(0.0, 0.1));
    points.At(i, 1) = static_cast<float>(rng.Normal(0.0, 0.1));
    points.At(20 + i, 0) = static_cast<float>(rng.Normal(10.0, 0.1));
    points.At(20 + i, 1) = static_cast<float>(rng.Normal(10.0, 0.1));
  }
  KMeansResult result = KMeans(points, 2, 20, rng);
  // All points of one blob share a cluster id, different from the other.
  for (int i = 1; i < 20; ++i) {
    EXPECT_EQ(result.assignment[i], result.assignment[0]);
    EXPECT_EQ(result.assignment[20 + i], result.assignment[20]);
  }
  EXPECT_NE(result.assignment[0], result.assignment[20]);
}

TEST(Nmf, ReconstructsLowRankMatrix) {
  Rng rng(9);
  // Build a rank-2 non-negative matrix.
  Matrix u(8, 2), v(6, 2);
  for (size_t i = 0; i < u.size(); ++i) {
    u.data()[i] = static_cast<float>(rng.Uniform(0.0, 1.0));
  }
  for (size_t i = 0; i < v.size(); ++i) {
    v.data()[i] = static_cast<float>(rng.Uniform(0.0, 1.0));
  }
  std::vector<std::tuple<int32_t, int32_t, float>> triplets;
  for (int32_t i = 0; i < 8; ++i) {
    for (int32_t j = 0; j < 6; ++j) {
      triplets.emplace_back(i, j, dense::Dot(u.Row(i), v.Row(j), 2));
    }
  }
  CsrMatrix r = CsrMatrix::FromTriplets(8, 6, triplets);
  NmfResult nmf = Nmf(r, 2, 200, rng);
  double err = 0.0, total = 0.0;
  for (int32_t i = 0; i < 8; ++i) {
    for (int32_t j = 0; j < 6; ++j) {
      const float approx = dense::Dot(nmf.user_factors.Row(i),
                                      nmf.item_factors.Row(j), 2);
      err += std::fabs(approx - r.At(i, j));
      total += r.At(i, j);
    }
  }
  EXPECT_LT(err / total, 0.05);
}

}  // namespace
}  // namespace kgrec
