// End-to-end: generate a synthetic world, train the CF baselines, and
// verify they beat chance on held-out interactions.

#include <gtest/gtest.h>

#include <memory>

#include "cf/fm.h"
#include "cf/knn.h"
#include "cf/mf.h"
#include "cf/popularity.h"
#include "core/recommender.h"
#include "data/presets.h"
#include "data/synthetic.h"
#include "eval/protocol.h"

namespace kgrec {
namespace {

struct Fixture {
  SyntheticWorld world;
  DataSplit split;

  Fixture() {
    WorldConfig config;
    config.num_users = 150;
    config.num_items = 250;
    config.avg_interactions_per_user = 18.0;
    config.item_relations = {{"genre", 10, 1, 0.9f}, {"brand", 25, 1, 0.7f}};
    config.seed = 99;
    world = GenerateWorld(config);
    Rng rng(5);
    split = RatioSplit(world.interactions, 0.2, rng);
  }
};

Fixture& SharedFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

double TrainAndAuc(Recommender& model) {
  Fixture& f = SharedFixture();
  RecContext ctx;
  ctx.train = &f.split.train;
  ctx.item_kg = &f.world.item_kg;
  ctx.seed = 13;
  model.Fit(ctx);
  Rng rng(77);
  return EvaluateCtr(model, f.split.train, f.split.test, rng).auc;
}

TEST(IntegrationCf, PopularityBeatsChance) {
  PopularityRecommender model;
  EXPECT_GT(TrainAndAuc(model), 0.55);
}

TEST(IntegrationCf, ItemKnnLearns) {
  ItemKnnRecommender model(15);
  EXPECT_GT(TrainAndAuc(model), 0.6);
}

TEST(IntegrationCf, UserKnnLearns) {
  UserKnnRecommender model(15);
  EXPECT_GT(TrainAndAuc(model), 0.6);
}

TEST(IntegrationCf, MfLearns) {
  MfConfig config;
  config.epochs = 25;
  MfRecommender model(config);
  EXPECT_GT(TrainAndAuc(model), 0.65);
}

TEST(IntegrationCf, BprMfLearns) {
  MfConfig config;
  config.epochs = 25;
  BprMfRecommender model(config);
  EXPECT_GT(TrainAndAuc(model), 0.65);
}

TEST(IntegrationCf, FmWithKgFeaturesLearns) {
  FmConfig config;
  config.epochs = 15;
  FmRecommender model(config);
  EXPECT_GT(TrainAndAuc(model), 0.65);
}

TEST(IntegrationCf, TopKEvaluationProducesSaneValues) {
  Fixture& f = SharedFixture();
  MfConfig config;
  config.epochs = 20;
  BprMfRecommender model(config);
  RecContext ctx;
  ctx.train = &f.split.train;
  ctx.seed = 13;
  model.Fit(ctx);
  Rng rng(123);
  TopKMetrics topk =
      EvaluateTopK(model, f.split.train, f.split.test, 10, 50, rng);
  EXPECT_GT(topk.num_users, 50u);
  EXPECT_GT(topk.ndcg, 0.2);
  EXPECT_GE(topk.hit_rate, topk.recall);
  EXPECT_LE(topk.ndcg, 1.0);
}

}  // namespace
}  // namespace kgrec
