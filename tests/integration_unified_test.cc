// End-to-end training of the unified family (survey Section 4.3).

#include <gtest/gtest.h>

#include "core/recommender.h"
#include "data/synthetic.h"
#include "eval/protocol.h"
#include "unified/akupm.h"
#include "unified/kgat.h"
#include "unified/kgcn.h"
#include "unified/ripplenet.h"

namespace kgrec {
namespace {

struct Fixture {
  SyntheticWorld world;
  DataSplit split;
  UserItemGraph ui_graph;

  Fixture() {
    WorldConfig config;
    config.num_users = 150;
    config.num_items = 250;
    config.avg_interactions_per_user = 16.0;
    config.item_relations = {{"genre", 10, 1, 0.9f}, {"studio", 25, 1, 0.7f}};
    config.seed = 55;
    world = GenerateWorld(config);
    Rng rng(8);
    split = RatioSplit(world.interactions, 0.2, rng);
    ui_graph = BuildUserItemGraph(world, split.train);
  }
};

Fixture& SharedFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

double TrainAndAuc(Recommender& model) {
  Fixture& f = SharedFixture();
  RecContext ctx;
  ctx.train = &f.split.train;
  ctx.item_kg = &f.world.item_kg;
  ctx.user_item_graph = &f.ui_graph;
  ctx.seed = 23;
  model.Fit(ctx);
  Rng rng(99);
  return EvaluateCtr(model, f.split.train, f.split.test, rng).auc;
}

TEST(IntegrationUnified, RippleNetLearns) {
  RippleNetConfig config;
  config.epochs = 10;
  RippleNetRecommender model(config);
  EXPECT_GT(TrainAndAuc(model), 0.65);
}

TEST(IntegrationUnified, AkupmLearns) {
  RippleNetConfig config;
  config.epochs = 10;
  AkupmRecommender model(config);
  EXPECT_GT(TrainAndAuc(model), 0.65);
}

TEST(IntegrationUnified, KgcnLearns) {
  KgcnConfig config;
  config.epochs = 10;
  KgcnRecommender model(config);
  EXPECT_GT(TrainAndAuc(model), 0.65);
}

TEST(IntegrationUnified, KgcnLsLearns) {
  KgcnConfig config;
  config.epochs = 10;
  config.ls_weight = 0.5f;
  KgcnRecommender model(config);
  EXPECT_EQ(model.name(), "KGCN-LS");
  EXPECT_GT(TrainAndAuc(model), 0.65);
}

TEST(IntegrationUnified, KgatLearns) {
  KgatConfig config;
  config.epochs = 10;
  KgatRecommender model(config);
  EXPECT_GT(TrainAndAuc(model), 0.65);
}

TEST(IntegrationUnified, KgcnAllAggregatorsLearn) {
  for (AggregatorKind kind :
       {AggregatorKind::kSum, AggregatorKind::kConcat,
        AggregatorKind::kNeighbor, AggregatorKind::kBiInteraction}) {
    KgcnConfig config;
    config.epochs = 6;
    config.aggregator = kind;
    KgcnRecommender model(config);
    EXPECT_GT(TrainAndAuc(model), 0.6) << AggregatorKindName(kind);
  }
}

}  // namespace
}  // namespace kgrec
