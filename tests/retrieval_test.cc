// Lockdown of the retrieval layer (src/retrieval/) and the top-K
// correctness fixes that came with it:
//
//  * math/topk.h — RankBetter is a total order (NaN last, ties toward
//    the smaller index), so TopKIndices/TopKScored are well-defined on
//    NaN-laced inputs (the old comparator was UB inside partial_sort)
//    and BoundedTopK's streaming selection is scan-order independent.
//  * the DotProductFactors export contract: for every factorizable
//    registry model and every KGE backend, an exact index scan over the
//    export is bitwise ScoreAll + TopKScored.
//  * IvfIndex: bitwise-deterministic build at any thread count, exact
//    when probes == clusters, candidate-complete under exclusions.
//  * the serve path: Recommend()'s exclusion handling (the old -inf
//    sentinel dropped legitimate -inf scores and could return excluded
//    items), edge cases (k=0, k > catalog, everything excluded,
//    duplicate/out-of-range ids, NaN scores) against a brute-force
//    reference, and the router's recommend traffic.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <future>
#include <limits>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "cf/mf.h"
#include "core/recommender.h"
#include "core/registry.h"
#include "data/synthetic.h"
#include "embed/cfkg.h"
#include "math/rng.h"
#include "math/topk.h"
#include "retrieval/factors.h"
#include "retrieval/index.h"
#include "retrieval/quantize.h"
#include "retrieval/two_stage.h"
#include "serve/router.h"
#include "serve/serve_handle.h"

// ---------------------------------------------------------------------
// Counting global operator new: the RetrievalScratch allocation pin.
// Replacement operators must have external linkage (outside any
// namespace); counting is armed per thread so concurrent test machinery
// never perturbs the count.

namespace kgrec_test_alloc {
thread_local bool g_counting = false;
thread_local size_t g_count = 0;
}  // namespace kgrec_test_alloc

void* operator new(std::size_t size) {
  if (kgrec_test_alloc::g_counting) ++kgrec_test_alloc::g_count;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace kgrec {
namespace {

using retrieval::BruteForceIndex;
using retrieval::ItemFactors;
using retrieval::IvfConfig;
using retrieval::IvfIndex;
using retrieval::ScoreKernel;
using retrieval::TwoStageConfig;
using retrieval::TwoStageRetriever;
using serve::RetrievalSpec;
using serve::ServeHandle;

constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

// ---------------------------------------------------------------------
// Shared fitted world (one Fit per model class across all tests).

struct RetrievalWorld {
  SyntheticWorld world;
  DataSplit split;
  UserItemGraph ui_graph;

  RetrievalWorld() {
    WorldConfig config;
    config.num_users = 30;
    config.num_items = 40;
    config.avg_interactions_per_user = 8.0;
    config.item_relations = {{"genre", 5, 1, 0.9f}, {"studio", 8, 1, 0.7f}};
    config.seed = 515;
    world = GenerateWorld(config);
    Rng rng(12);
    split = RatioSplit(world.interactions, 0.25, rng);
    ui_graph = BuildUserItemGraph(world, split.train);
  }

  RecContext Context(uint64_t seed = 29) const {
    RecContext ctx;
    ctx.train = &split.train;
    ctx.item_kg = &world.item_kg;
    ctx.user_item_graph = &ui_graph;
    ctx.seed = seed;
    return ctx;
  }
};

RetrievalWorld& SharedWorld() {
  static RetrievalWorld* world = new RetrievalWorld();
  return *world;
}

void ExpectSameRanking(const std::vector<std::pair<int32_t, float>>& want,
                       const std::vector<std::pair<int32_t, float>>& got,
                       const std::string& what) {
  ASSERT_EQ(want.size(), got.size()) << what;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].first, got[i].first) << what << " rank " << i;
    // Bitwise: NaN == NaN must pass.
    EXPECT_EQ(std::memcmp(&want[i].second, &got[i].second, sizeof(float)), 0)
        << what << " rank " << i << ": " << want[i].second << " vs "
        << got[i].second;
  }
}

/// The reference selection: rank every non-excluded (item, score) pair
/// with a full sort under RankBetter and cut at k. Deliberately naive.
std::vector<std::pair<int32_t, float>> BruteReference(
    const std::vector<float>& scores, size_t k,
    std::vector<int32_t> exclude = {}) {
  std::sort(exclude.begin(), exclude.end());
  std::vector<std::pair<int32_t, float>> pairs;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (std::binary_search(exclude.begin(), exclude.end(),
                           static_cast<int32_t>(i))) {
      continue;
    }
    pairs.emplace_back(static_cast<int32_t>(i), scores[i]);
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const auto& x, const auto& y) {
              return RankBetter(x.second, x.first, y.second, y.first);
            });
  if (pairs.size() > k) pairs.resize(k);
  return pairs;
}

// ---------------------------------------------------------------------
// RetrievalTopK: the NaN/tie ordering fix and the streaming heap.

TEST(RetrievalTopK, NanRanksLastAndTiesBreakTowardSmallerIndex) {
  // Regression for the strict-weak-ordering violation: NaN interleaved
  // with real scores used to be UB inside std::partial_sort. Under the
  // fixed total order the result is fully determined.
  const std::vector<float> scores{kNan, 2.0f, kNan, 2.0f, -kInf, 3.0f};
  const std::vector<int32_t> want_order{5, 1, 3, 4, 0, 2};
  EXPECT_EQ(TopKIndices(scores, scores.size()), want_order);

  const auto top3 = TopKScored(scores, 3);
  ASSERT_EQ(top3.size(), 3u);
  EXPECT_EQ(top3[0], (std::pair<int32_t, float>{5, 3.0f}));
  EXPECT_EQ(top3[1], (std::pair<int32_t, float>{1, 2.0f}));
  EXPECT_EQ(top3[2], (std::pair<int32_t, float>{3, 2.0f}));

  // All-NaN input: pure index order, k respected.
  const std::vector<float> all_nan{kNan, kNan, kNan};
  EXPECT_EQ(TopKIndices(all_nan, 2), (std::vector<int32_t>{0, 1}));
}

TEST(RetrievalTopK, NanLacedVectorsAreDeterministic) {
  // Many NaN patterns, many k: the selection must never depend on
  // partial_sort's whims. Compare against the naive full-sort reference.
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<float> scores(37);
    for (float& s : scores) {
      const double u = rng.Uniform();
      if (u < 0.2) {
        s = kNan;
      } else if (u < 0.3) {
        s = (u < 0.25) ? kInf : -kInf;
      } else {
        // Coarse grid so duplicate scores (ties) are common.
        s = static_cast<float>(static_cast<int>(rng.Uniform(-5, 5)));
      }
    }
    for (size_t k : {size_t{0}, size_t{1}, size_t{7}, scores.size(),
                     scores.size() + 10}) {
      const auto got = TopKScored(scores, k);
      const auto want = BruteReference(scores, k);
      ExpectSameRanking(want, got, "trial " + std::to_string(trial));
    }
  }
}

TEST(RetrievalTopK, BoundedTopKMatchesTopKScoredAnyScanOrder) {
  // The streaming bounded heap must select the same unique top-K as the
  // full-vector sort, whatever order the items are fed in — the property
  // that makes blocked index scans exact.
  Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<float> scores(64);
    for (float& s : scores) {
      const double u = rng.Uniform();
      s = u < 0.15 ? kNan
                   : static_cast<float>(static_cast<int>(rng.Uniform(-4, 4)));
    }
    std::vector<int32_t> order(scores.size());
    for (size_t i = 0; i < order.size(); ++i) {
      order[i] = static_cast<int32_t>(i);
    }
    rng.Shuffle(order);
    for (size_t k : {size_t{0}, size_t{1}, size_t{10}, scores.size() + 3}) {
      BoundedTopK top(k);
      for (int32_t id : order) top.Push(id, scores[id]);
      ExpectSameRanking(TopKScored(scores, k), top.TakeSorted(),
                        "k=" + std::to_string(k));
    }
  }
}

TEST(RetrievalTopK, BoundedTopKWouldAcceptAgreesWithPush) {
  BoundedTopK top(2);
  EXPECT_TRUE(top.WouldAccept(0, 1.0f));
  top.Push(0, 1.0f);
  top.Push(1, 2.0f);
  // Full at {2.0 @1, 1.0 @0}: a worse score is refused, a better kept.
  EXPECT_FALSE(top.WouldAccept(5, 0.5f));
  EXPECT_TRUE(top.WouldAccept(5, 1.5f));
  // Equal score, larger index than the current worst: refused (ties
  // break toward the smaller index).
  EXPECT_FALSE(top.WouldAccept(5, 1.0f));
  top.Push(5, 1.5f);
  const auto out = top.TakeSorted();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].first, 1);
  EXPECT_EQ(out[1].first, 5);
}

// ---------------------------------------------------------------------
// RetrievalExport: the factor-export contract, zoo-wide.

TEST(RetrievalExport, RegistryQueryNamesTheFactorizableZoo) {
  const std::vector<std::string> names = FactorizableMethodNames();
  for (const char* expected :
       {"MF", "BPR-MF", "CKE", "CFKG", "ECFKG", "Hete-MF", "Hete-CF",
        "KGAT"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected << " should be factorizable";
  }
  // Spot-check the negative side: scores that are not one fixed kernel
  // over static vectors must not claim the export surface.
  for (const char* expected : {"KTUP", "HERec", "RippleNet", "Popularity"}) {
    EXPECT_EQ(std::find(names.begin(), names.end(), expected), names.end())
        << expected << " must not be factorizable";
  }
  std::unique_ptr<Recommender> mf = MakeRecommender("MF");
  EXPECT_TRUE(IsFactorizable(*mf));
  std::unique_ptr<Recommender> pop = MakeRecommender("Popularity");
  EXPECT_FALSE(IsFactorizable(*pop));
}

void ExpectExportContract(Recommender& model, const std::string& name) {
  const RetrievalWorld& world = SharedWorld();
  const int32_t num_items = world.split.train.num_items();
  const int32_t num_users = world.split.train.num_users();
  const DotProductFactors* factors = AsFactorizable(model);
  ASSERT_NE(factors, nullptr) << name;

  const ItemFactors exported = factors->ExportItemFactors();
  ASSERT_EQ(exported.items.rows(), static_cast<size_t>(num_items)) << name;
  ASSERT_EQ(exported.items.cols(), factors->factor_dim()) << name;

  // Pointwise: kernel(query, row) must be bitwise Score().
  std::vector<float> query(factors->factor_dim());
  for (int32_t user = 0; user < num_users; ++user) {
    factors->FillUserQuery(user, query);
    for (int32_t item = 0; item < num_items; ++item) {
      const float via_export =
          retrieval::KernelScore(exported.kernel, query.data(),
                                 exported.items.Row(item),
                                 factors->factor_dim());
      const float direct = model.Score(user, item);
      ASSERT_EQ(std::memcmp(&via_export, &direct, sizeof(float)), 0)
          << name << " user " << user << " item " << item;
    }
  }

  // Selection: the exact index must be bitwise ScoreAll + TopKScored,
  // with and without exclusions.
  BruteForceIndex index(factors->ExportItemFactors());
  const std::vector<int32_t> exclude_raw{3, 3, 1, num_items + 7, -2, 0};
  const std::vector<int32_t> exclude =
      retrieval::SanitizeExclude(exclude_raw, num_items);
  for (int32_t user = 0; user < std::min<int32_t>(num_users, 8); ++user) {
    const std::vector<float> scores = model.ScoreAll(user, num_items);
    factors->FillUserQuery(user, query);
    ExpectSameRanking(TopKScored(scores, 10), index.Query(query, 10),
                      name + " plain");
    ExpectSameRanking(BruteReference(scores, 10, exclude_raw),
                      index.Query(query, 10, exclude),
                      name + " excluded");
  }
}

TEST(RetrievalExport, EveryFactorizableModelScansBitwise) {
  for (const std::string& name : FactorizableMethodNames()) {
    std::unique_ptr<Recommender> model = MakeRecommender(name);
    model->Fit(SharedWorld().Context());
    ExpectExportContract(*model, name);
  }
}

TEST(RetrievalExport, EveryKgeBackendFactorizes) {
  // CFKG over each of the five KGE backends: the fixed-relation
  // factorization (FillHeadQuery / FillTailFactor) must reproduce the
  // backend's triple score bitwise, translation-distance and bilinear
  // alike.
  for (const char* backend :
       {"transe", "transh", "transr", "transd", "distmult"}) {
    CfkgConfig config;
    config.kge = backend;
    config.epochs = 4;
    CfkgRecommender model(config);
    model.Fit(SharedWorld().Context());
    ExpectExportContract(model, std::string("CFKG/") + backend);
  }
}

// ---------------------------------------------------------------------
// RetrievalIvf: determinism, exactness at full probe, exclusion.

ItemFactors MixtureFactors(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  const size_t clusters = 8;
  Matrix centers(clusters, dim);
  for (size_t i = 0; i < centers.size(); ++i) {
    centers.data()[i] = static_cast<float>(rng.Normal());
  }
  ItemFactors factors;
  factors.kernel = ScoreKernel::kDot;
  factors.items = Matrix(n, dim);
  for (size_t i = 0; i < n; ++i) {
    const float* center = centers.Row(rng.UniformInt(clusters));
    float* row = factors.items.Row(i);
    for (size_t c = 0; c < dim; ++c) {
      row[c] = center[c] + 0.2f * static_cast<float>(rng.Normal());
    }
  }
  return factors;
}

ItemFactors CopyFactors(const ItemFactors& factors) {
  ItemFactors copy;
  copy.kernel = factors.kernel;
  copy.items = factors.items;
  return copy;
}

TEST(RetrievalIvf, BuildIsBitwiseIdenticalAtAnyThreadCount) {
  const ItemFactors factors = MixtureFactors(300, 8, 41);
  IvfConfig config;
  config.num_clusters = 12;
  config.num_probes = 3;

  IvfConfig threaded = config;
  threaded.num_threads = 4;
  const IvfIndex serial(CopyFactors(factors), config);
  const IvfIndex parallel(CopyFactors(factors), threaded);

  Rng rng(7);
  std::vector<float> query(8);
  for (int trial = 0; trial < 20; ++trial) {
    for (float& q : query) q = static_cast<float>(rng.Normal());
    ExpectSameRanking(serial.Query(query, 10), parallel.Query(query, 10),
                      "threaded build trial " + std::to_string(trial));
  }
}

TEST(RetrievalIvf, FullProbeIsBitwiseBruteForce) {
  const ItemFactors factors = MixtureFactors(250, 8, 42);
  const BruteForceIndex exact(CopyFactors(factors));
  IvfConfig config;
  config.num_clusters = 10;
  config.num_probes = 10;  // probes == clusters: nothing pruned
  const IvfIndex ivf(CopyFactors(factors), config);

  const std::vector<int32_t> exclude =
      retrieval::SanitizeExclude(std::vector<int32_t>{5, 17, 101}, 250);
  Rng rng(8);
  std::vector<float> query(8);
  for (int trial = 0; trial < 20; ++trial) {
    for (float& q : query) q = static_cast<float>(rng.Normal());
    ExpectSameRanking(exact.Query(query, 10), ivf.Query(query, 10),
                      "full probe");
    ExpectSameRanking(exact.Query(query, 10, exclude),
                      ivf.Query(query, 10, exclude), "full probe excluded");
  }
}

TEST(RetrievalIvf, ReasonableRecallAtDefaultProbes) {
  // Not the CI gate (bench/retrieval_scaling --smoke gates 0.95); this
  // is a sanity floor that catches a broken probe ranking outright.
  const ItemFactors factors = MixtureFactors(400, 8, 43);
  const BruteForceIndex exact(CopyFactors(factors));
  const IvfIndex ivf(CopyFactors(factors), IvfConfig{});

  Rng rng(9);
  std::vector<float> query(8);
  double recall = 0.0;
  const int trials = 30;
  for (int trial = 0; trial < trials; ++trial) {
    for (float& q : query) q = static_cast<float>(rng.Normal());
    const auto want = exact.Query(query, 10);
    const auto got = ivf.Query(query, 10);
    size_t hits = 0;
    for (const auto& [item, score] : got) {
      for (const auto& entry : want) {
        if (item == entry.first) {
          ++hits;
          break;
        }
      }
    }
    recall += static_cast<double>(hits) / static_cast<double>(want.size());
  }
  EXPECT_GE(recall / trials, 0.7);
}

// ---------------------------------------------------------------------
// RetrievalTwoStage: candidate generation + exact re-rank.

/// A deliberately non-factorizable ranker: score is a fixed function of
/// (user, item) with no inner-product structure.
class QuirkyRanker : public Recommender {
 public:
  std::string name() const override { return "QuirkyRanker"; }
  void Fit(const RecContext&) override {}
  float Score(int32_t user, int32_t item) const override {
    return static_cast<float>(((user * 31 + item * 17) % 23) -
                              (item % 5) * 0.25f);
  }
};

TEST(RetrievalTwoStage, RequiresFactorizableCandidateModel) {
  std::shared_ptr<const Recommender> bad =
      std::shared_ptr<Recommender>(MakeRecommender("Popularity"));
  std::unique_ptr<const TwoStageRetriever> retriever;
  const Status status =
      TwoStageRetriever::Create(bad, TwoStageConfig{}, &retriever);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(RetrievalTwoStage, RanksCandidatesWithTheRankerScores) {
  const RetrievalWorld& world = SharedWorld();
  const int32_t num_items = world.split.train.num_items();

  auto candidate = std::make_shared<MfRecommender>();
  candidate->Fit(world.Context());
  std::unique_ptr<const TwoStageRetriever> retriever;
  TwoStageConfig config;
  // Candidate pool covers the entire catalog: stage 2 then re-ranks
  // everything, so the result must equal the ranker's exhaustive top-k.
  config.min_candidates = static_cast<size_t>(num_items);
  ASSERT_TRUE(
      TwoStageRetriever::Create(candidate, config, &retriever).ok());

  const QuirkyRanker ranker;
  for (int32_t user = 0; user < 6; ++user) {
    const std::vector<float> scores = ranker.ScoreAll(user, num_items);
    ExpectSameRanking(BruteReference(scores, 10),
                      retriever->Recommend(ranker, user, 10),
                      "user " + std::to_string(user));
  }

  // With a narrow pool the results are the ranker's scores over the
  // candidate model's shortlist — every returned item must carry its
  // exact ranker score.
  TwoStageConfig narrow;
  narrow.candidates_per_k = 2;
  narrow.min_candidates = 8;
  std::unique_ptr<const TwoStageRetriever> shortlist;
  ASSERT_TRUE(
      TwoStageRetriever::Create(candidate, narrow, &shortlist).ok());
  const auto out = shortlist->Recommend(ranker, 1, 4);
  ASSERT_EQ(out.size(), 4u);
  for (const auto& [item, score] : out) {
    const float direct = ranker.Score(1, item);
    EXPECT_EQ(std::memcmp(&score, &direct, sizeof(float)), 0);
  }
}

// ---------------------------------------------------------------------
// RetrievalServe: ServeHandle::Recommend edge cases and the -inf fix.

/// Scores straight out of a table — lets tests plant NaN and -inf.
class TableModel : public Recommender {
 public:
  explicit TableModel(Matrix scores) : scores_(std::move(scores)) {}
  std::string name() const override { return "TableModel"; }
  void Fit(const RecContext&) override {}
  float Score(int32_t user, int32_t item) const override {
    return scores_.At(user, item);
  }

 private:
  Matrix scores_;
};

std::shared_ptr<const ServeHandle> TableHandle(const Matrix& scores) {
  const RetrievalWorld& world = SharedWorld();
  // The handle takes the catalog size from the context; the shared
  // world's 40 items must match the table width.
  EXPECT_EQ(scores.cols(), static_cast<size_t>(40));
  return ServeHandle::Adopt(std::make_unique<TableModel>(scores),
                            world.Context(), 1);
}

Matrix FiniteScores(uint64_t seed) {
  Matrix scores(30, 40);
  Rng rng(seed);
  for (size_t i = 0; i < scores.size(); ++i) {
    scores.data()[i] = static_cast<float>(rng.Normal());
  }
  return scores;
}

TEST(RetrievalServe, RecommendHandlesEdgeCasesAgainstReference) {
  const Matrix scores = FiniteScores(4242);
  const auto handle = TableHandle(scores);
  const int32_t n = 40;

  std::vector<float> row(scores.Row(2), scores.Row(2) + n);
  // k = 0 and k > catalog.
  EXPECT_TRUE(handle->Recommend(2, 0).empty());
  ExpectSameRanking(BruteReference(row, n + 25),
                    handle->Recommend(2, static_cast<size_t>(n) + 25),
                    "k > catalog");

  // All items excluded.
  std::vector<int32_t> all(n);
  for (int32_t i = 0; i < n; ++i) all[i] = i;
  EXPECT_TRUE(handle->Recommend(2, 10, all).empty());

  // Duplicate and out-of-range exclude ids are tolerated and the listed
  // items never come back.
  const std::vector<int32_t> messy{7, 7, -3, n + 100, 0, 7};
  const auto got = handle->Recommend(2, 10, messy);
  ExpectSameRanking(BruteReference(row, 10, messy), got, "messy excludes");
  for (const auto& [item, score] : got) {
    EXPECT_NE(item, 7);
    EXPECT_NE(item, 0);
  }
}

TEST(RetrievalServe, RecommendRanksNanLastDeterministically) {
  Matrix scores = FiniteScores(777);
  for (int32_t item = 0; item < 40; item += 3) {
    scores.At(4, item) = kNan;
  }
  const auto handle = TableHandle(scores);
  std::vector<float> row(scores.Row(4), scores.Row(4) + 40);
  ExpectSameRanking(BruteReference(row, 40), handle->Recommend(4, 40),
                    "NaN row");
}

TEST(RetrievalServe, NegativeInfinityScoresAreNotConfusedWithExclusion) {
  // Regression for the -inf sentinel scheme. A model that legitimately
  // scores items -inf must still have them ranked (last among non-NaN),
  // and excluded items must never resurface.
  Matrix scores = FiniteScores(31337);
  for (int32_t item = 0; item < 40; ++item) {
    scores.At(6, item) = -kInf;  // user 6 hates everything
  }
  scores.At(6, 13) = 1.0f;
  const auto handle = TableHandle(scores);

  // k = catalog with no exclusions: every item comes back, the -inf ones
  // in index order after item 13 — none silently dropped (the old code
  // popped every trailing -inf).
  const auto full = handle->Recommend(6, 40);
  ASSERT_EQ(full.size(), 40u);
  EXPECT_EQ(full[0].first, 13);
  EXPECT_EQ(full[1].first, 0);
  EXPECT_EQ(full[1].second, -kInf);

  // Excluding the only finite item: the result is 10 genuine -inf items,
  // 13 absent (the old code could return the excluded item here since
  // its sentinel score tied with the real -inf scores).
  const std::vector<int32_t> exclude{13};
  const auto got = handle->Recommend(6, 10, exclude);
  ASSERT_EQ(got.size(), 10u);
  for (const auto& [item, score] : got) {
    EXPECT_NE(item, 13);
    EXPECT_EQ(score, -kInf);
  }
  std::vector<float> row(scores.Row(6), scores.Row(6) + 40);
  ExpectSameRanking(BruteReference(row, 10, exclude), got, "-inf exclusion");
}

TEST(RetrievalServe, IndexedHandleIsBitwiseExhaustive) {
  // A factorizable model behind kAuto serves through the exact index;
  // kExhaustive forces the ScoreAll path. Both must agree bitwise.
  const RetrievalWorld& world = SharedWorld();
  auto fitted = std::make_unique<MfRecommender>();
  fitted->Fit(world.Context());
  auto fitted_copy = std::make_unique<MfRecommender>();
  fitted_copy->Fit(world.Context());

  const auto indexed =
      ServeHandle::Adopt(std::move(fitted), world.Context(), 1);
  EXPECT_EQ(indexed->retrieval_mode(), "exact-index");
  ASSERT_NE(indexed->index(), nullptr);

  RetrievalSpec exhaustive;
  exhaustive.mode = RetrievalSpec::Mode::kExhaustive;
  std::shared_ptr<const ServeHandle> scan;
  ASSERT_TRUE(ServeHandle::Adopt(std::move(fitted_copy), world.Context(), 1,
                                 exhaustive, &scan)
                  .ok());
  EXPECT_EQ(scan->retrieval_mode(), "exhaustive");

  const std::vector<int32_t> exclude{1, 5, 5, 200};
  for (int32_t user = 0; user < 8; ++user) {
    ExpectSameRanking(scan->Recommend(user, 10), indexed->Recommend(user, 10),
                      "indexed vs exhaustive");
    ExpectSameRanking(scan->Recommend(user, 10, exclude),
                      indexed->Recommend(user, 10, exclude),
                      "indexed vs exhaustive excluded");
  }
}

TEST(RetrievalServe, SpecFailsCleanlyOnNonFactorizableModels) {
  const RetrievalWorld& world = SharedWorld();
  RetrievalSpec exact;
  exact.mode = RetrievalSpec::Mode::kExact;
  std::shared_ptr<const ServeHandle> handle;
  const Status status =
      ServeHandle::Adopt(std::make_unique<TableModel>(FiniteScores(1)),
                         world.Context(), 1, exact, &handle);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(handle, nullptr);

  // kAuto on the same model falls back to the exhaustive path instead.
  const auto served = ServeHandle::Adopt(
      std::make_unique<TableModel>(FiniteScores(1)), world.Context(), 1);
  EXPECT_EQ(served->retrieval_mode(), "exhaustive");
}

TEST(RetrievalServe, TwoStageHandleServesRankerScores) {
  const RetrievalWorld& world = SharedWorld();
  const int32_t num_items = world.split.train.num_items();
  auto candidate = std::make_shared<MfRecommender>();
  candidate->Fit(world.Context());

  RetrievalSpec spec;
  spec.mode = RetrievalSpec::Mode::kTwoStage;
  spec.candidate_model = candidate;
  spec.two_stage.min_candidates = static_cast<size_t>(num_items);
  std::shared_ptr<const ServeHandle> handle;
  ASSERT_TRUE(ServeHandle::Adopt(std::make_unique<QuirkyRanker>(),
                                 world.Context(), 1, spec, &handle)
                  .ok());
  EXPECT_EQ(handle->retrieval_mode(), "two-stage");

  const QuirkyRanker reference;
  for (int32_t user = 0; user < 6; ++user) {
    const std::vector<float> scores = reference.ScoreAll(user, num_items);
    ExpectSameRanking(BruteReference(scores, 10), handle->Recommend(user, 10),
                      "two-stage user " + std::to_string(user));
  }
}

// ---------------------------------------------------------------------
// RetrievalRouter: recommend traffic through the admission machinery.

TEST(RetrievalRouter, RecommendSyncMatchesDirectHandleCall) {
  const RetrievalWorld& world = SharedWorld();
  auto fitted = std::make_unique<MfRecommender>();
  fitted->Fit(world.Context());
  const auto handle = ServeHandle::Adopt(std::move(fitted), world.Context(), 7);

  serve::RouterConfig config;
  config.num_threads = 2;
  serve::Router router(config, handle);

  for (int32_t user = 0; user < 8; ++user) {
    serve::RecommendRequest request;
    request.user = user;
    request.k = 5;
    request.exclude = {2, 2, -1, 999};
    const serve::RecommendResponse response =
        router.RecommendSync(std::move(request));
    ASSERT_TRUE(response.status.ok());
    EXPECT_EQ(response.generation, 7u);
    EXPECT_GT(response.completed_ns, 0u);
    const std::vector<int32_t> exclude{2, 2, -1, 999};
    ExpectSameRanking(handle->Recommend(user, 5, exclude), response.items,
                      "router user " + std::to_string(user));
  }
}

TEST(RetrievalRouter, MixedScoreAndRecommendTrafficBothDeliver) {
  const RetrievalWorld& world = SharedWorld();
  auto fitted = std::make_unique<MfRecommender>();
  fitted->Fit(world.Context());
  const auto handle = ServeHandle::Adopt(std::move(fitted), world.Context(), 3);

  serve::RouterConfig config;
  config.num_threads = 3;
  serve::Router router(config, handle);

  std::vector<std::future<serve::ScoreResponse>> score_futures;
  std::vector<std::future<serve::RecommendResponse>> rec_futures;
  std::vector<int32_t> items{0, 1, 2, 3, 4};
  for (int round = 0; round < 20; ++round) {
    const int32_t user = round % 6;
    serve::ScoreRequest score_request;
    score_request.user = user;
    score_request.items = items;
    score_futures.push_back(router.Submit(std::move(score_request)));
    serve::RecommendRequest rec_request;
    rec_request.user = user;
    rec_request.k = 4;
    rec_futures.push_back(router.SubmitRecommend(std::move(rec_request)));
  }
  for (size_t i = 0; i < score_futures.size(); ++i) {
    const int32_t user = static_cast<int32_t>(i) % 6;
    const serve::ScoreResponse response = score_futures[i].get();
    ASSERT_TRUE(response.status.ok());
    const std::vector<float> want = handle->ScoreItems(user, items);
    ASSERT_EQ(response.scores.size(), want.size());
    for (size_t j = 0; j < want.size(); ++j) {
      EXPECT_EQ(std::memcmp(&response.scores[j], &want[j], sizeof(float)), 0);
    }
    const serve::RecommendResponse rec = rec_futures[i].get();
    ASSERT_TRUE(rec.status.ok());
    ExpectSameRanking(handle->Recommend(user, 4), rec.items,
                      "mixed round " + std::to_string(i));
  }
  const serve::RouterStats stats = router.Stats();
  EXPECT_EQ(stats.accepted, 40u);
  EXPECT_EQ(stats.responses, 40u);
  EXPECT_EQ(stats.rejected, 0u);
}

// ---------------------------------------------------------------------
// RetrievalSq8: the quantized scan with exact float re-rank must return
// the float32 index's result bitwise (the DESIGN §12 gate).

retrieval::ScanSpec Sq8Spec() {
  retrieval::ScanSpec spec;
  spec.precision = retrieval::ScanPrecision::kSq8;
  return spec;
}

TEST(RetrievalSq8, BruteDotScanIsBitwiseFloat) {
  const ItemFactors factors = MixtureFactors(400, 12, 321);
  const BruteForceIndex exact(CopyFactors(factors));
  const BruteForceIndex sq8(CopyFactors(factors), Sq8Spec());
  ASSERT_NE(sq8.quantized(), nullptr);
  EXPECT_EQ(sq8.quantized()->code_bytes(), 400u * 12u);

  const std::vector<int32_t> exclude =
      retrieval::SanitizeExclude(std::vector<int32_t>{3, 44, 101, 399}, 400);
  Rng rng(17);
  std::vector<float> query(12);
  for (int trial = 0; trial < 25; ++trial) {
    for (float& q : query) q = static_cast<float>(rng.Normal());
    for (size_t k : {size_t{1}, size_t{10}, size_t{40}}) {
      ExpectSameRanking(exact.Query(query, k), sq8.Query(query, k),
                        "sq8 dot k=" + std::to_string(k));
      ExpectSameRanking(exact.Query(query, k, exclude),
                        sq8.Query(query, k, exclude),
                        "sq8 dot excluded k=" + std::to_string(k));
    }
  }
}

TEST(RetrievalSq8, BruteL2ScanIsBitwiseFloat) {
  ItemFactors factors = MixtureFactors(400, 12, 654);
  factors.kernel = ScoreKernel::kNegSquaredL2;
  const BruteForceIndex exact(CopyFactors(factors));
  const BruteForceIndex sq8(CopyFactors(factors), Sq8Spec());

  Rng rng(18);
  std::vector<float> query(12);
  for (int trial = 0; trial < 25; ++trial) {
    for (float& q : query) q = static_cast<float>(rng.Normal());
    ExpectSameRanking(exact.Query(query, 10), sq8.Query(query, 10),
                      "sq8 l2 trial " + std::to_string(trial));
  }
}

TEST(RetrievalSq8, NonFiniteFactorRowsStayBitwise) {
  // A few NaN/±inf item rows: the approximate scan gives them arbitrary
  // finite pool scores, the re-rank restores their true (NaN-last /
  // inf-first) placement. The widened pool absorbs the shuffling.
  ItemFactors factors = MixtureFactors(300, 8, 777);
  factors.items.At(5, 2) = kNan;
  factors.items.At(17, 0) = kInf;
  factors.items.At(42, 6) = -kInf;
  for (size_t d = 0; d < 8; ++d) factors.items.At(99, d) = kNan;
  const BruteForceIndex exact(CopyFactors(factors));
  const BruteForceIndex sq8(CopyFactors(factors), Sq8Spec());

  Rng rng(19);
  std::vector<float> query(8);
  for (int trial = 0; trial < 20; ++trial) {
    for (float& q : query) q = static_cast<float>(rng.Normal());
    ExpectSameRanking(exact.Query(query, 10), sq8.Query(query, 10),
                      "sq8 weird trial " + std::to_string(trial));
  }
}

TEST(RetrievalSq8, PoolCoveringCatalogIsExactByConstruction) {
  // k + rerank_slack >= catalog: the pool holds every non-excluded item,
  // so the re-rank IS the full float scan — equality is structural, not
  // empirical.
  const ItemFactors factors = MixtureFactors(60, 6, 888);
  const BruteForceIndex exact(CopyFactors(factors));
  retrieval::ScanSpec spec = Sq8Spec();
  spec.rerank_factor = 1;
  spec.rerank_slack = 60;
  const BruteForceIndex sq8(CopyFactors(factors), spec);
  Rng rng(20);
  std::vector<float> query(6);
  for (int trial = 0; trial < 10; ++trial) {
    for (float& q : query) q = static_cast<float>(rng.Normal());
    ExpectSameRanking(exact.Query(query, 25), sq8.Query(query, 25),
                      "covering pool");
  }
}

TEST(RetrievalSq8, IvfSq8FullProbeIsBitwiseBruteFloat) {
  const ItemFactors factors = MixtureFactors(250, 8, 999);
  const BruteForceIndex exact(CopyFactors(factors));
  IvfConfig config;
  config.num_clusters = 10;
  config.num_probes = 10;  // nothing pruned: sq8 rerank must equal brute
  const IvfIndex ivf(CopyFactors(factors), config, Sq8Spec());

  const std::vector<int32_t> exclude =
      retrieval::SanitizeExclude(std::vector<int32_t>{5, 17, 101}, 250);
  Rng rng(21);
  std::vector<float> query(8);
  for (int trial = 0; trial < 20; ++trial) {
    for (float& q : query) q = static_cast<float>(rng.Normal());
    ExpectSameRanking(exact.Query(query, 10), ivf.Query(query, 10),
                      "ivf sq8 full probe");
    ExpectSameRanking(exact.Query(query, 10, exclude),
                      ivf.Query(query, 10, exclude),
                      "ivf sq8 full probe excluded");
  }
}

TEST(RetrievalSq8, IvfSq8MatchesIvfFloatAtPartialProbes) {
  // Same probes, different scan representation: probe selection is
  // always float, so the scanned id set is identical and the re-rank
  // must reproduce the float IVF result bitwise.
  const ItemFactors factors = MixtureFactors(300, 8, 1001);
  IvfConfig config;
  config.num_clusters = 12;
  config.num_probes = 4;
  const IvfIndex f32(CopyFactors(factors), config);
  const IvfIndex sq8(CopyFactors(factors), config, Sq8Spec());
  Rng rng(22);
  std::vector<float> query(8);
  for (int trial = 0; trial < 20; ++trial) {
    for (float& q : query) q = static_cast<float>(rng.Normal());
    ExpectSameRanking(f32.Query(query, 10), sq8.Query(query, 10),
                      "ivf sq8 partial probes");
  }
}

void ExpectSq8ServesBitwise(Recommender& model, const std::string& name) {
  const DotProductFactors* factors = AsFactorizable(model);
  ASSERT_NE(factors, nullptr) << name;
  const BruteForceIndex exact(factors->ExportItemFactors());
  const BruteForceIndex sq8(factors->ExportItemFactors(), Sq8Spec());
  const RetrievalWorld& world = SharedWorld();
  const int32_t num_users = world.split.train.num_users();
  std::vector<float> query(factors->factor_dim());
  for (int32_t user = 0; user < std::min<int32_t>(num_users, 8); ++user) {
    factors->FillUserQuery(user, query);
    ExpectSameRanking(exact.Query(query, 10), sq8.Query(query, 10),
                      name + " sq8 user " + std::to_string(user));
  }
}

TEST(RetrievalSq8, EveryFactorizableModelServesBitwise) {
  for (const std::string& name : FactorizableMethodNames()) {
    std::unique_ptr<Recommender> model = MakeRecommender(name);
    model->Fit(SharedWorld().Context());
    ExpectSq8ServesBitwise(*model, name);
  }
}

TEST(RetrievalSq8, EveryKgeBackendServesBitwise) {
  for (const char* backend :
       {"transe", "transh", "transr", "transd", "distmult"}) {
    CfkgConfig config;
    config.kge = backend;
    config.epochs = 4;
    CfkgRecommender model(config);
    model.Fit(SharedWorld().Context());
    ExpectSq8ServesBitwise(model, std::string("CFKG/") + backend);
  }
}

TEST(RetrievalSq8, ServeHandleAndRouterCarryTheSq8Mode) {
  const RetrievalWorld& world = SharedWorld();
  auto fitted = std::make_unique<MfRecommender>();
  fitted->Fit(world.Context());
  auto fitted_copy = std::make_unique<MfRecommender>();
  fitted_copy->Fit(world.Context());

  const auto float_handle =
      ServeHandle::Adopt(std::move(fitted_copy), world.Context(), 1);

  RetrievalSpec spec;
  spec.mode = RetrievalSpec::Mode::kExact;
  spec.scan = Sq8Spec();
  std::shared_ptr<const ServeHandle> sq8_handle;
  ASSERT_TRUE(ServeHandle::Adopt(std::move(fitted), world.Context(), 1, spec,
                                 &sq8_handle)
                  .ok());
  EXPECT_EQ(sq8_handle->retrieval_mode(), "exact-index+sq8");
  ASSERT_NE(sq8_handle->index(), nullptr);
  EXPECT_EQ(sq8_handle->index()->precision(),
            retrieval::ScanPrecision::kSq8);

  const std::vector<int32_t> exclude{1, 5, 5, 200};
  for (int32_t user = 0; user < 8; ++user) {
    ExpectSameRanking(float_handle->Recommend(user, 10, exclude),
                      sq8_handle->Recommend(user, 10, exclude),
                      "sq8 handle user " + std::to_string(user));
  }

  // Router recommend traffic over the sq8 handle: batching and worker
  // threads change nothing.
  serve::RouterConfig router_config;
  router_config.num_threads = 2;
  serve::Router router(router_config, sq8_handle);
  for (int32_t user = 0; user < 6; ++user) {
    serve::RecommendRequest request;
    request.user = user;
    request.k = 5;
    const serve::RecommendResponse response =
        router.RecommendSync(std::move(request));
    ASSERT_TRUE(response.status.ok());
    ExpectSameRanking(sq8_handle->Recommend(user, 5), response.items,
                      "sq8 router user " + std::to_string(user));
  }
}

TEST(RetrievalSq8, TwoStageWithSq8StageOneServesRankerScores) {
  const RetrievalWorld& world = SharedWorld();
  const int32_t num_items = world.split.train.num_items();
  auto candidate = std::make_shared<MfRecommender>();
  candidate->Fit(world.Context());

  RetrievalSpec spec;
  spec.mode = RetrievalSpec::Mode::kTwoStage;
  spec.candidate_model = candidate;
  spec.two_stage.min_candidates = static_cast<size_t>(num_items);
  spec.two_stage.scan = Sq8Spec();
  std::shared_ptr<const ServeHandle> handle;
  ASSERT_TRUE(ServeHandle::Adopt(std::make_unique<QuirkyRanker>(),
                                 world.Context(), 1, spec, &handle)
                  .ok());
  EXPECT_EQ(handle->retrieval_mode(), "two-stage+sq8");

  const QuirkyRanker reference;
  for (int32_t user = 0; user < 6; ++user) {
    const std::vector<float> scores = reference.ScoreAll(user, num_items);
    ExpectSameRanking(BruteReference(scores, 10), handle->Recommend(user, 10),
                      "two-stage sq8 user " + std::to_string(user));
  }
}

// ---------------------------------------------------------------------
// RetrievalScratch: the hoisted per-call scratch makes steady-state
// queries allocation-free, pinned with a counting operator new.

TEST(RetrievalScratch, SteadyStateQueriesAreAllocationFree) {
  const ItemFactors factors = MixtureFactors(500, 16, 2025);
  const BruteForceIndex f32(CopyFactors(factors));
  const BruteForceIndex sq8(CopyFactors(factors), Sq8Spec());
  IvfConfig ivf_config;
  ivf_config.num_clusters = 16;
  ivf_config.num_probes = 4;
  const IvfIndex ivf(CopyFactors(factors), ivf_config, Sq8Spec());

  retrieval::SearchScratch scratch;
  std::vector<std::pair<int32_t, float>> out;
  const std::vector<int32_t> exclude =
      retrieval::SanitizeExclude(std::vector<int32_t>{3, 10, 77, 410}, 500);
  Rng rng(23);
  std::vector<float> query(16);
  for (float& q : query) q = static_cast<float>(rng.Normal());

  // Warm-up: every scratch buffer reaches steady-state capacity.
  for (int i = 0; i < 3; ++i) {
    f32.QueryInto(query, 10, exclude, scratch, &out);
    sq8.QueryInto(query, 10, exclude, scratch, &out);
    ivf.QueryInto(query, 10, exclude, scratch, &out);
  }

  kgrec_test_alloc::g_count = 0;
  kgrec_test_alloc::g_counting = true;
  for (int i = 0; i < 5; ++i) {
    f32.QueryInto(query, 10, exclude, scratch, &out);
    sq8.QueryInto(query, 10, exclude, scratch, &out);
    ivf.QueryInto(query, 10, exclude, scratch, &out);
  }
  kgrec_test_alloc::g_counting = false;
  EXPECT_EQ(kgrec_test_alloc::g_count, 0u)
      << "steady-state QueryInto allocated";
}

TEST(RetrievalScratch, QueryIntoMatchesQueryAcrossScratchReuse) {
  // One scratch reused across different indexes, kernels and k values
  // must never leak state between calls.
  ItemFactors dot_factors = MixtureFactors(200, 8, 31);
  ItemFactors l2_factors = MixtureFactors(200, 8, 32);
  l2_factors.kernel = ScoreKernel::kNegSquaredL2;
  const BruteForceIndex dot_sq8(CopyFactors(dot_factors), Sq8Spec());
  const BruteForceIndex l2_sq8(CopyFactors(l2_factors), Sq8Spec());
  const BruteForceIndex dot_f32(CopyFactors(dot_factors));

  retrieval::SearchScratch scratch;
  std::vector<std::pair<int32_t, float>> out;
  Rng rng(24);
  std::vector<float> query(8);
  for (int trial = 0; trial < 15; ++trial) {
    for (float& q : query) q = static_cast<float>(rng.Normal());
    const size_t k = 1 + static_cast<size_t>(trial);
    dot_sq8.QueryInto(query, k, {}, scratch, &out);
    ExpectSameRanking(dot_sq8.Query(query, k), out, "reuse dot");
    l2_sq8.QueryInto(query, k, {}, scratch, &out);
    ExpectSameRanking(l2_sq8.Query(query, k), out, "reuse l2");
    dot_f32.QueryInto(query, k, {}, scratch, &out);
    ExpectSameRanking(dot_f32.Query(query, k), out, "reuse f32");
  }
}

}  // namespace
}  // namespace kgrec
