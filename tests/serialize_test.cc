// Tests of the KGRT tensor-archive checkpoint format.

#include <gtest/gtest.h>

#include <cstdio>
#include <sys/stat.h>
#include <unistd.h>

#include "core/serialize.h"
#include "graph/knowledge_graph.h"
#include "kge/kge_model.h"
#include "kge/kge_trainer.h"

namespace kgrec {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(Serialize, RoundTripNamedTensors) {
  const std::string path = TempPath("roundtrip.kgrt");
  std::vector<NamedTensor> original;
  original.push_back({"alpha", 2, 3, {1, 2, 3, 4, 5, 6}});
  original.push_back({"beta", 1, 1, {-0.5f}});
  ASSERT_TRUE(SaveTensorArchive(path, original).ok());
  std::vector<NamedTensor> loaded;
  ASSERT_TRUE(LoadTensorArchive(path, &loaded).ok());
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].name, "alpha");
  EXPECT_EQ(loaded[0].rows, 2u);
  EXPECT_EQ(loaded[0].cols, 3u);
  EXPECT_EQ(loaded[0].data, original[0].data);
  EXPECT_EQ(loaded[1].name, "beta");
  EXPECT_FLOAT_EQ(loaded[1].data[0], -0.5f);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileIsIoError) {
  std::vector<NamedTensor> loaded;
  EXPECT_EQ(LoadTensorArchive("/nonexistent/dir/x.kgrt", &loaded).code(),
            StatusCode::kIoError);
}

TEST(Serialize, CorruptMagicIsInvalidArgument) {
  const std::string path = TempPath("corrupt.kgrt");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("NOPE", 1, 4, f);
  std::fclose(f);
  std::vector<NamedTensor> loaded;
  EXPECT_EQ(LoadTensorArchive(path, &loaded).code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(Serialize, TruncatedArchiveIsIoError) {
  const std::string path = TempPath("truncated.kgrt");
  std::vector<NamedTensor> original{{"x", 4, 4, std::vector<float>(16, 1.0f)}};
  ASSERT_TRUE(SaveTensorArchive(path, original).ok());
  // Truncate the file mid-blob.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size - 8), 0);
  std::vector<NamedTensor> loaded;
  EXPECT_EQ(LoadTensorArchive(path, &loaded).code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(Serialize, OverflowingShapeHeaderIsRejected) {
  // rows = cols = 2^33: the 2^66-element product wraps uint64 to 0, which
  // slipped past the old `rows * cols > 2^32` guard and made the loader
  // accept the tensor with an empty data blob but a 2^33-row shape. The
  // division-based guard must reject the header outright.
  const std::string path = TempPath("overflow.kgrt");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const uint32_t version = 1, count = 1, name_len = 1;
  const uint64_t rows = 1ull << 33, cols = 1ull << 33;
  ASSERT_EQ(std::fwrite("KGRT", 1, 4, f), 4u);
  ASSERT_EQ(std::fwrite(&version, sizeof(version), 1, f), 1u);
  ASSERT_EQ(std::fwrite(&count, sizeof(count), 1, f), 1u);
  ASSERT_EQ(std::fwrite(&name_len, sizeof(name_len), 1, f), 1u);
  ASSERT_EQ(std::fwrite("x", 1, 1, f), 1u);
  ASSERT_EQ(std::fwrite(&rows, sizeof(rows), 1, f), 1u);
  ASSERT_EQ(std::fwrite(&cols, sizeof(cols), 1, f), 1u);
  std::fclose(f);
  ASSERT_EQ(rows * cols, 0u);  // the product wraps all the way to zero
  std::vector<NamedTensor> loaded;
  EXPECT_EQ(LoadTensorArchive(path, &loaded).code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(Serialize, FailedSaveNeverClobbersExistingArchive) {
  // Saves write to <path>.tmp and rename into place only on success, so
  // a failed save must leave an existing good archive untouched. Force
  // the failure by squatting on the temp path with a directory.
  const std::string path = TempPath("atomic.kgrt");
  std::vector<NamedTensor> good{{"x", 1, 2, {3.0f, 4.0f}}};
  ASSERT_TRUE(SaveTensorArchive(path, good).ok());
  const std::string tmp = path + ".tmp";
  ASSERT_EQ(mkdir(tmp.c_str(), 0755), 0);
  std::vector<NamedTensor> other{{"y", 1, 1, {9.0f}}};
  EXPECT_EQ(SaveTensorArchive(path, other).code(), StatusCode::kIoError);
  std::vector<NamedTensor> loaded;
  ASSERT_TRUE(LoadTensorArchive(path, &loaded).ok());
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].name, "x");
  EXPECT_EQ(loaded[0].data, good[0].data);
  ASSERT_EQ(rmdir(tmp.c_str()), 0);
  std::remove(path.c_str());
}

TEST(Serialize, ShapeMismatchRejectedOnSave) {
  const std::string path = TempPath("badshape.kgrt");
  std::vector<NamedTensor> bad{{"x", 2, 2, {1.0f}}};  // 1 value, shape 2x2
  EXPECT_EQ(SaveTensorArchive(path, bad).code(),
            StatusCode::kInvalidArgument);
}

TEST(Serialize, KgeModelCheckpointRestoresScores) {
  // Train a model, snapshot it, restore into a fresh model: scores must
  // be bit-identical.
  KnowledgeGraph kg;
  for (int i = 0; i < 12; ++i) kg.AddEntity("e" + std::to_string(i));
  kg.AddRelation("r");
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(kg.AddTriple(i, 0, (i + 1) % 12).ok());
  }
  kg.Finalize();
  Rng rng(1);
  auto trained = MakeKgeModel("transh", kg.num_entities(),
                              kg.num_relations(), 8, rng);
  KgeTrainConfig config;
  config.epochs = 10;
  TrainKge(*trained, kg, config);

  const std::string path = TempPath("transh.kgrt");
  ASSERT_TRUE(SaveTensorArchive(path, SnapshotParams(trained->Params())).ok());

  Rng rng2(999);  // different init on purpose
  auto restored = MakeKgeModel("transh", kg.num_entities(),
                               kg.num_relations(), 8, rng2);
  std::vector<NamedTensor> snapshot;
  ASSERT_TRUE(LoadTensorArchive(path, &snapshot).ok());
  std::vector<nn::Tensor> params = restored->Params();
  ASSERT_TRUE(RestoreParams(snapshot, &params).ok());

  for (int i = 0; i < 10; ++i) {
    const float a =
        trained->ScoreBatch({i}, {0}, {(i + 1) % 12}).value();
    const float b =
        restored->ScoreBatch({i}, {0}, {(i + 1) % 12}).value();
    EXPECT_FLOAT_EQ(a, b);
  }
  std::remove(path.c_str());

  // Restoring into a model of the wrong dimension fails cleanly.
  Rng rng3(5);
  auto wrong = MakeKgeModel("transh", kg.num_entities(), kg.num_relations(),
                            4, rng3);
  std::vector<nn::Tensor> wrong_params = wrong->Params();
  EXPECT_EQ(RestoreParams(snapshot, &wrong_params).code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace kgrec
