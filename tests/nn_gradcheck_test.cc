// Finite-difference verification of every autodiff op. These tests are
// the foundation the whole model zoo stands on: if they pass, the
// optimisation dynamics of every model are trustworthy.

#include <gtest/gtest.h>

#include "math/rng.h"
#include "nn/gradcheck.h"
#include "nn/init.h"
#include "nn/layers.h"
#include "nn/ops.h"

namespace kgrec::nn {
namespace {

constexpr double kTol = 2e-3;

Tensor RandomParam(size_t rows, size_t cols, Rng& rng) {
  return UniformInit(rows, cols, -0.9f, 0.9f, rng);
}

TEST(GradCheck, AddSubMulSameShape) {
  Rng rng(1);
  Tensor a = RandomParam(3, 4, rng);
  Tensor b = RandomParam(3, 4, rng);
  EXPECT_LT(GradCheck([&] { return Sum(Add(a, b)); }, {a, b}), kTol);
  EXPECT_LT(GradCheck([&] { return Sum(Sub(a, b)); }, {a, b}), kTol);
  EXPECT_LT(GradCheck([&] { return Sum(Mul(a, b)); }, {a, b}), kTol);
}

TEST(GradCheck, BroadcastScalarRowCol) {
  Rng rng(2);
  Tensor a = RandomParam(3, 4, rng);
  Tensor scalar = RandomParam(1, 1, rng);
  Tensor row = RandomParam(1, 4, rng);
  Tensor col = RandomParam(3, 1, rng);
  EXPECT_LT(GradCheck([&] { return Sum(Mul(a, scalar)); }, {a, scalar}), kTol);
  EXPECT_LT(GradCheck([&] { return Sum(Mul(a, row)); }, {a, row}), kTol);
  EXPECT_LT(GradCheck([&] { return Sum(Mul(a, col)); }, {a, col}), kTol);
  EXPECT_LT(GradCheck([&] { return Sum(Add(a, row)); }, {a, row}), kTol);
  EXPECT_LT(GradCheck([&] { return Sum(Sub(a, col)); }, {a, col}), kTol);
}

TEST(GradCheck, MatMulAndTranspose) {
  Rng rng(3);
  Tensor a = RandomParam(3, 5, rng);
  Tensor b = RandomParam(5, 2, rng);
  EXPECT_LT(GradCheck([&] { return Sum(MatMul(a, b)); }, {a, b}), kTol);
  EXPECT_LT(GradCheck([&] { return Sum(Square(Transpose(a))); }, {a}), kTol);
}

TEST(GradCheck, UnaryOps) {
  Rng rng(4);
  Tensor a = RandomParam(2, 6, rng);
  EXPECT_LT(GradCheck([&] { return Sum(Sigmoid(a)); }, {a}), kTol);
  EXPECT_LT(GradCheck([&] { return Sum(Tanh(a)); }, {a}), kTol);
  EXPECT_LT(GradCheck([&] { return Sum(Exp(a)); }, {a}), kTol);
  EXPECT_LT(GradCheck([&] { return Sum(Square(a)); }, {a}), kTol);
  EXPECT_LT(GradCheck([&] { return Sum(Softplus(a)); }, {a}), kTol);
  EXPECT_LT(GradCheck([&] { return Sum(ScaleBy(a, -2.5f)); }, {a}), kTol);
  EXPECT_LT(GradCheck([&] { return Sum(AddConst(a, 0.7f)); }, {a}), kTol);
}

TEST(GradCheck, LogAwayFromZero) {
  Rng rng(5);
  Tensor a = UniformInit(2, 4, 0.5f, 1.5f, rng);
  EXPECT_LT(GradCheck([&] { return Sum(Log(a)); }, {a}), kTol);
}

TEST(GradCheck, Reductions) {
  Rng rng(6);
  Tensor a = RandomParam(3, 4, rng);
  EXPECT_LT(GradCheck([&] { return Mean(Square(a)); }, {a}), kTol);
  EXPECT_LT(GradCheck([&] { return Sum(Square(SumRows(a))); }, {a}), kTol);
  EXPECT_LT(GradCheck([&] { return Sum(Square(SumCols(a))); }, {a}), kTol);
  EXPECT_LT(GradCheck([&] { return Sum(Square(MeanRows(a))); }, {a}), kTol);
}

TEST(GradCheck, SoftmaxConcat) {
  Rng rng(7);
  Tensor a = RandomParam(3, 4, rng);
  Tensor b = RandomParam(3, 2, rng);
  EXPECT_LT(GradCheck([&] { return Sum(Square(Softmax(a))); }, {a}), kTol);
  EXPECT_LT(GradCheck([&] { return Sum(Square(Concat(a, b))); }, {a, b}),
            kTol);
}

TEST(GradCheck, GatherScatterAdd) {
  Rng rng(8);
  Tensor table = RandomParam(6, 3, rng);
  // Repeated indices exercise gradient accumulation.
  std::vector<int32_t> indices{0, 2, 2, 5, 0};
  EXPECT_LT(GradCheck([&] { return Sum(Square(Gather(table, indices))); },
                      {table}),
            kTol);
}

TEST(GradCheck, RowwiseOps) {
  Rng rng(9);
  Tensor a = RandomParam(4, 3, rng);
  Tensor b = RandomParam(4, 3, rng);
  Tensor w = RandomParam(4, 9, rng);
  EXPECT_LT(GradCheck([&] { return Sum(Square(RowwiseDot(a, b))); }, {a, b}),
            kTol);
  EXPECT_LT(
      GradCheck([&] { return Sum(Square(RowwiseVecMat(a, w))); }, {a, w}),
      kTol);
}

TEST(GradCheck, MaxOp) {
  Rng rng(23);
  Tensor a = RandomParam(3, 4, rng);
  Tensor b = RandomParam(3, 4, rng);
  EXPECT_LT(GradCheck([&] { return Sum(Max(a, b)); }, {a, b}), kTol);
  Tensor row = RandomParam(1, 4, rng);
  EXPECT_LT(GradCheck([&] { return Sum(Max(a, row)); }, {a, row}), kTol);
}

TEST(GradCheck, ReshapeAndGroupSum) {
  Rng rng(21);
  Tensor a = RandomParam(6, 4, rng);
  EXPECT_LT(GradCheck([&] { return Sum(Square(Reshape(a, 3, 8))); }, {a}),
            kTol);
  EXPECT_LT(GradCheck([&] { return Sum(Square(GroupSumRows(a, 3))); }, {a}),
            kTol);
}

TEST(GradCheck, IndexedSumRows) {
  Rng rng(22);
  Tensor values = RandomParam(5, 3, rng);
  std::vector<int32_t> indices{0, 2, 2, 1, 0};
  EXPECT_LT(GradCheck(
                [&] { return Sum(Square(IndexedSumRows(values, indices, 4))); },
                {values}),
            kTol);
}

TEST(GradCheck, Losses) {
  Rng rng(10);
  Tensor logits = RandomParam(5, 1, rng);
  Tensor pos = RandomParam(5, 1, rng);
  Tensor neg = RandomParam(5, 1, rng);
  std::vector<float> targets{1, 0, 1, 1, 0};
  std::vector<float> values{0.5f, -0.25f, 1.0f, 0.0f, 2.0f};
  EXPECT_LT(GradCheck([&] { return BceWithLogits(logits, targets); },
                      {logits}),
            kTol);
  EXPECT_LT(GradCheck([&] { return BprLoss(pos, neg); }, {pos, neg}), kTol);
  EXPECT_LT(GradCheck([&] { return MseLoss(logits, values); }, {logits}),
            kTol);
  EXPECT_LT(GradCheck([&] { return Sum(Square(Relu(logits))); }, {logits}),
            kTol);
}

TEST(GradCheck, LinearLayerAndComposition) {
  Rng rng(11);
  Linear layer(4, 3, rng);
  Tensor x = RandomParam(2, 4, rng);
  std::vector<Tensor> params = layer.Params();
  params.push_back(x);
  EXPECT_LT(
      GradCheck([&] { return Sum(Square(Tanh(layer.Forward(x)))); }, params),
      kTol);
}

TEST(GradCheck, GruCell) {
  Rng rng(12);
  GruCell cell(3, 4, rng);
  Tensor x = RandomParam(2, 3, rng);
  Tensor h = RandomParam(2, 4, rng);
  std::vector<Tensor> params = cell.Params();
  params.push_back(x);
  params.push_back(h);
  EXPECT_LT(GradCheck([&] { return Sum(Square(cell.Step(x, h))); }, params),
            kTol);
}

TEST(GradCheck, LstmCellTwoSteps) {
  Rng rng(13);
  LstmCell cell(3, 4, rng);
  Tensor x1 = RandomParam(2, 3, rng);
  Tensor x2 = RandomParam(2, 3, rng);
  std::vector<Tensor> params = cell.Params();
  params.push_back(x1);
  params.push_back(x2);
  auto loss = [&] {
    LstmCell::State s = cell.InitialState(2);
    s = cell.Step(x1, s);
    s = cell.Step(x2, s);
    return Sum(Square(s.h));
  };
  EXPECT_LT(GradCheck(loss, params), kTol);
}

TEST(GradCheck, GradAccumulatesAcrossBackwardCalls) {
  Tensor a = Tensor::FromData(1, 1, {2.0f}, /*requires_grad=*/true);
  Tensor loss1 = Square(a);
  Backward(loss1);
  const float g1 = a.grad()[0];
  Tensor loss2 = Square(a);
  Backward(loss2);
  EXPECT_FLOAT_EQ(a.grad()[0], 2.0f * g1);
  a.ZeroGrad();
  EXPECT_FLOAT_EQ(a.grad()[0], 0.0f);
}

TEST(GradCheck, DiamondGraphReuse) {
  // a feeds two branches that rejoin: gradient must sum both paths.
  Rng rng(14);
  Tensor a = RandomParam(2, 3, rng);
  auto loss = [&] {
    Tensor left = Sigmoid(a);
    Tensor right = Tanh(a);
    return Sum(Mul(left, right));
  };
  EXPECT_LT(GradCheck(loss, {a}), kTol);
}

}  // namespace
}  // namespace kgrec::nn
