// End-to-end training of the path-based family (survey Section 4.2).

#include <gtest/gtest.h>

#include "core/recommender.h"
#include "data/synthetic.h"
#include "eval/protocol.h"
#include "path/fmg.h"
#include "path/hete_mf.h"
#include "path/heterec.h"
#include "path/kprn.h"
#include "path/pgpr.h"
#include "path/rkge.h"
#include "path/rulerec.h"

namespace kgrec {
namespace {

struct Fixture {
  SyntheticWorld world;
  DataSplit split;
  UserItemGraph ui_graph;

  Fixture() {
    WorldConfig config;
    config.num_users = 150;
    config.num_items = 250;
    config.avg_interactions_per_user = 16.0;
    config.item_relations = {{"genre", 10, 1, 0.9f}, {"studio", 25, 1, 0.7f}};
    config.seed = 77;
    world = GenerateWorld(config);
    Rng rng(9);
    split = RatioSplit(world.interactions, 0.2, rng);
    ui_graph = BuildUserItemGraph(world, split.train);
  }
};

Fixture& SharedFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

double TrainAndAuc(Recommender& model) {
  Fixture& f = SharedFixture();
  RecContext ctx;
  ctx.train = &f.split.train;
  ctx.item_kg = &f.world.item_kg;
  ctx.user_item_graph = &f.ui_graph;
  ctx.seed = 29;
  model.Fit(ctx);
  Rng rng(111);
  return EvaluateCtr(model, f.split.train, f.split.test, rng).auc;
}

TEST(IntegrationPath, HeteMfLearns) {
  HeteMfConfig config;
  config.epochs = 25;
  HeteMfRecommender model(config);
  EXPECT_GT(TrainAndAuc(model), 0.65);
}

TEST(IntegrationPath, HeteRecLearns) {
  HeteRecRecommender model;
  EXPECT_GT(TrainAndAuc(model), 0.65);
}

TEST(IntegrationPath, HeteRecPLearns) {
  HeteRecConfig config;
  config.num_user_clusters = 4;
  HeteRecRecommender model(config);
  EXPECT_EQ(model.name(), "HeteRec-p");
  EXPECT_GT(TrainAndAuc(model), 0.65);
}

TEST(IntegrationPath, FmgLearns) {
  FmgRecommender model;
  EXPECT_GT(TrainAndAuc(model), 0.65);
}

TEST(IntegrationPath, RuleRecLearnsAndExplains) {
  RuleRecRecommender model;
  EXPECT_GT(TrainAndAuc(model), 0.65);
  auto rules = model.Rules();
  ASSERT_FALSE(rules.empty());
  // The aligned "genre" rule should carry positive weight.
  bool found_genre = false;
  for (const auto& [name, weight] : rules) {
    if (name.find("genre") != std::string::npos && weight > 0.0f) {
      found_genre = true;
    }
  }
  EXPECT_TRUE(found_genre);
  const std::string reason = model.Explain(0, 5);
  EXPECT_FALSE(reason.empty());
}

TEST(IntegrationPath, RkgeLearns) {
  RkgeConfig config;
  config.epochs = 4;
  RkgeRecommender model(config);
  EXPECT_GT(TrainAndAuc(model), 0.62);
}

TEST(IntegrationPath, KprnLearnsAndExplains) {
  KprnConfig config;
  config.epochs = 4;
  KprnRecommender model(config);
  EXPECT_GT(TrainAndAuc(model), 0.62);
}

TEST(IntegrationPath, PgprLearnsAndExplains) {
  PgprConfig config;
  PgprRecommender model(config);
  EXPECT_GT(TrainAndAuc(model), 0.6);
  // At least one user should have explainable beam-reached items.
  size_t explained = 0;
  for (int32_t u = 0; u < 150 && explained == 0; ++u) {
    for (int32_t i = 0; i < 250; ++i) {
      if (!model.ExplainPath(u, i).empty()) {
        ++explained;
        break;
      }
    }
  }
  EXPECT_GT(explained, 0u);
}

}  // namespace
}  // namespace kgrec
