// Tests of the KGE backends: parameterized over all five models.

#include <gtest/gtest.h>

#include <cmath>

#include "graph/knowledge_graph.h"
#include "kge/kge_model.h"
#include "kge/kge_trainer.h"

namespace kgrec {
namespace {

/// A bipartite-ish graph with strong regularity: entities 0..9 relate to
/// entity (i % 3) + 10 via relation 0, so the pattern is learnable.
KnowledgeGraph PatternGraph() {
  KnowledgeGraph kg;
  for (int i = 0; i < 13; ++i) kg.AddEntity("e" + std::to_string(i));
  kg.AddRelation("r");
  kg.AddRelation("s");
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(kg.AddTriple(i, 0, 10 + (i % 3)).ok());
    EXPECT_TRUE(kg.AddTriple(10 + (i % 3), 1, i).ok());
  }
  kg.Finalize();
  return kg;
}

class KgeBackendTest : public ::testing::TestWithParam<std::string> {};

TEST_P(KgeBackendTest, FactoryAndShapes) {
  Rng rng(1);
  auto model = MakeKgeModel(GetParam(), 20, 4, 8, rng);
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->dim(), 8u);
  EXPECT_EQ(model->entity_embeddings().rows(), 20u);
  EXPECT_EQ(model->entity_embeddings().cols(), 8u);
  EXPECT_EQ(model->relation_embeddings().rows(), 4u);
  nn::Tensor scores = model->ScoreBatch({0, 1}, {0, 1}, {2, 3});
  EXPECT_EQ(scores.rows(), 2u);
  EXPECT_EQ(scores.cols(), 1u);
  EXPECT_FALSE(model->Params().empty());
}

TEST_P(KgeBackendTest, TrainingSeparatesTrueFromCorrupted) {
  KnowledgeGraph kg = PatternGraph();
  Rng rng(2);
  auto model =
      MakeKgeModel(GetParam(), kg.num_entities(), kg.num_relations(), 8, rng);
  KgeTrainConfig config;
  config.epochs = 60;
  config.batch_size = 8;
  TrainKge(*model, kg, config);
  // Average score of true triples must exceed corrupted ones clearly.
  double true_score = 0.0, corrupt_score = 0.0;
  size_t n = 0;
  Rng corrupt_rng(3);
  for (const Triple& t : kg.triples()) {
    true_score += model->ScoreBatch({t.head}, {t.relation}, {t.tail}).value();
    int32_t wrong = static_cast<int32_t>(
        corrupt_rng.UniformInt(kg.num_entities()));
    while (kg.HasTriple(t.head, t.relation, wrong)) {
      wrong = static_cast<int32_t>(corrupt_rng.UniformInt(kg.num_entities()));
    }
    corrupt_score +=
        model->ScoreBatch({t.head}, {t.relation}, {wrong}).value();
    ++n;
  }
  EXPECT_GT(true_score / n, corrupt_score / n + 0.1) << GetParam();
}

TEST_P(KgeBackendTest, LinkPredictionBeatsRandom) {
  KnowledgeGraph kg = PatternGraph();
  Rng rng(4);
  auto model =
      MakeKgeModel(GetParam(), kg.num_entities(), kg.num_relations(), 8, rng);
  KgeTrainConfig config;
  config.epochs = 60;
  config.batch_size = 8;
  TrainKge(*model, kg, config);
  Rng eval_rng(5);
  LinkPredictionMetrics metrics =
      EvaluateLinkPrediction(*model, kg, 20, 10, eval_rng);
  EXPECT_GT(metrics.num_queries, 0u);
  // Random guessing over 11 candidates gives MRR ~ 0.27.
  EXPECT_GT(metrics.mrr, 0.45) << GetParam();
  EXPECT_GE(metrics.hits_at_10, metrics.hits_at_3);
  EXPECT_GE(metrics.hits_at_3, metrics.hits_at_1);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, KgeBackendTest,
                         ::testing::ValuesIn(KgeModelNames()));

TEST(KgeModelNamesTest, ListsFiveBackends) {
  EXPECT_EQ(KgeModelNames().size(), 5u);
}

TEST(KgeNormalization, TransEPostEpochBoundsEntityNorms) {
  Rng rng(6);
  auto model = MakeKgeModel("transe", 5, 2, 4, rng);
  // Inflate an entity row, then normalize.
  nn::Tensor& emb = const_cast<nn::Tensor&>(model->entity_embeddings());
  for (size_t c = 0; c < 4; ++c) emb.data()[c] = 10.0f;
  model->PostEpoch();
  float norm = 0.0f;
  for (size_t c = 0; c < 4; ++c) norm += emb.data()[c] * emb.data()[c];
  EXPECT_NEAR(std::sqrt(norm), 1.0f, 1e-4f);
}

}  // namespace
}  // namespace kgrec
