// End-to-end training of the second wave of surveyed methods:
// Hete-CF, entity2rec, SHINE, KSR, KNI, RippleNet-agg.

#include <gtest/gtest.h>

#include "core/recommender.h"
#include "data/synthetic.h"
#include "embed/entity2rec.h"
#include "embed/ksr.h"
#include "embed/shine.h"
#include "eval/protocol.h"
#include "path/hete_cf.h"
#include "unified/kni.h"
#include "unified/ripplenet_agg.h"

namespace kgrec {
namespace {

struct Fixture {
  SyntheticWorld world;
  DataSplit split;
  UserItemGraph ui_graph;

  Fixture() {
    WorldConfig config;
    config.num_users = 150;
    config.num_items = 250;
    config.avg_interactions_per_user = 16.0;
    config.item_relations = {{"genre", 10, 1, 0.9f}, {"studio", 25, 1, 0.7f}};
    config.seed = 91;
    world = GenerateWorld(config);
    Rng rng(10);
    split = RatioSplit(world.interactions, 0.2, rng);
    ui_graph = BuildUserItemGraph(world, split.train);
  }
};

Fixture& SharedFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

double TrainAndAuc(Recommender& model) {
  Fixture& f = SharedFixture();
  RecContext ctx;
  ctx.train = &f.split.train;
  ctx.item_kg = &f.world.item_kg;
  ctx.user_item_graph = &f.ui_graph;
  ctx.seed = 37;
  model.Fit(ctx);
  Rng rng(222);
  return EvaluateCtr(model, f.split.train, f.split.test, rng).auc;
}

TEST(IntegrationExtended, HeteCfLearns) {
  HeteCfConfig config;
  config.epochs = 25;
  HeteCfRecommender model(config);
  EXPECT_GT(TrainAndAuc(model), 0.65);
}

TEST(IntegrationExtended, Entity2RecLearns) {
  Entity2RecRecommender model;
  EXPECT_GT(TrainAndAuc(model), 0.62);
}

TEST(IntegrationExtended, ShineLearns) {
  ShineConfig config;
  config.epochs = 15;
  ShineRecommender model(config);
  EXPECT_GT(TrainAndAuc(model), 0.62);
}

TEST(IntegrationExtended, KsrLearns) {
  KsrRecommender model;  // default epochs
  // KSR sits close to this bound; it moved from 0.60 when evaluation
  // switched to per-interaction counter-based negative streams.
  EXPECT_GT(TrainAndAuc(model), 0.58);
}

TEST(IntegrationExtended, KniLearns) {
  KniConfig config;
  config.epochs = 10;
  KniRecommender model(config);
  EXPECT_GT(TrainAndAuc(model), 0.62);
}

TEST(IntegrationExtended, RippleNetAggLearns) {
  RippleNetConfig config;
  config.epochs = 8;
  RippleNetAggRecommender model(config);
  EXPECT_EQ(model.name(), "RippleNet-agg");
  EXPECT_GT(TrainAndAuc(model), 0.65);
}

}  // namespace
}  // namespace kgrec
