// Tests of the evaluation protocols using oracle models with known
// behaviour, plus randomized sparse-algebra property checks and
// failure-injection death tests for programmer-error invariants.

#include <gtest/gtest.h>

#include "core/recommender.h"
#include "data/interactions.h"
#include "eval/protocol.h"
#include "math/sparse.h"
#include "nn/ops.h"

namespace kgrec {
namespace {

/// Scores exactly the pairs of a reference dataset as 1, others as 0.
class OracleRecommender : public Recommender {
 public:
  explicit OracleRecommender(const InteractionDataset* truth, bool inverted)
      : truth_(truth), inverted_(inverted) {}
  std::string name() const override { return "Oracle"; }
  void Fit(const RecContext&) override {}
  float Score(int32_t user, int32_t item) const override {
    const float s = truth_->Contains(user, item) ? 1.0f : -1.0f;
    return inverted_ ? -s : s;
  }

 private:
  const InteractionDataset* truth_;
  bool inverted_;
};

struct ProtocolFixture {
  InteractionDataset train{20, 40};
  InteractionDataset test{20, 40};

  ProtocolFixture() {
    Rng rng(3);
    for (int32_t u = 0; u < 20; ++u) {
      for (int k = 0; k < 5; ++k) {
        const int32_t item = static_cast<int32_t>(rng.UniformInt(40));
        if (!train.Contains(u, item)) train.Add(u, item);
      }
      for (int k = 0; k < 3; ++k) {
        const int32_t item = static_cast<int32_t>(rng.UniformInt(40));
        if (!train.Contains(u, item) && !test.Contains(u, item)) {
          test.Add(u, item);
        }
      }
    }
  }
};

TEST(Protocol, OracleGetsPerfectCtrMetrics) {
  ProtocolFixture f;
  OracleRecommender oracle(&f.test, /*inverted=*/false);
  Rng rng(9);
  CtrMetrics m = EvaluateCtr(oracle, f.train, f.test, rng);
  EXPECT_DOUBLE_EQ(m.auc, 1.0);
  EXPECT_DOUBLE_EQ(m.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
  // num_pairs counts (positive, negative) pairs, i.e. evaluated test
  // interactions — not the 2x score-vector length it once reported.
  EXPECT_EQ(m.num_pairs, f.test.num_interactions());
}

TEST(Protocol, DenseWorldNeverLabelsATestPositiveAsNegative) {
  // Per user: items 0-7 in train, 8-58 in test, item 59 untouched. The
  // negative pool is then 51 test positives + 1 valid negative, so the
  // 50-attempt rejection run exhausts for a large fraction of the 204
  // pairs (p ~ 0.37 each). The old fallback silently emitted the test
  // positive itself as the "negative"; the exhaustive fallback must find
  // item 59 every time.
  InteractionDataset train(4, 60);
  InteractionDataset test(4, 60);
  for (int32_t u = 0; u < 4; ++u) {
    for (int32_t item = 0; item < 59; ++item) {
      if (item < 8) {
        train.Add(u, item);
      } else {
        test.Add(u, item);
      }
    }
  }
  OracleRecommender oracle(&test, /*inverted=*/false);
  EvalOptions options;
  CtrMetrics m = EvaluateCtr(oracle, train, test, options);
  EXPECT_EQ(m.num_pairs, test.num_interactions());
  // The oracle scores positives 1 and true negatives -1: any sneaked-in
  // test positive would score 1 under label 0 and break the separation.
  EXPECT_DOUBLE_EQ(m.auc, 1.0);
  EXPECT_DOUBLE_EQ(m.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
}

TEST(Protocol, FullyInteractedUsersSkipTheirCtrPairs) {
  // Users 0/1 have consumed the whole catalog (train + test): no valid
  // negative exists, so their pairs must be skipped, not mislabeled.
  InteractionDataset train(2, 6);
  InteractionDataset test(2, 6);
  for (int32_t u = 0; u < 2; ++u) {
    for (int32_t item = 0; item < 6; ++item) {
      if (item == 5) {
        test.Add(u, item);
      } else {
        train.Add(u, item);
      }
    }
  }
  OracleRecommender oracle(&test, /*inverted=*/false);
  EvalOptions options;
  CtrMetrics m = EvaluateCtr(oracle, train, test, options);
  EXPECT_EQ(m.num_pairs, 0u);
  EXPECT_DOUBLE_EQ(m.auc, 0.0);
}

TEST(Protocol, InvertedOracleGetsZeroAuc) {
  ProtocolFixture f;
  OracleRecommender inverted(&f.test, /*inverted=*/true);
  Rng rng(9);
  CtrMetrics m = EvaluateCtr(inverted, f.train, f.test, rng);
  EXPECT_DOUBLE_EQ(m.auc, 0.0);
}

TEST(Protocol, OracleGetsPerfectTopK) {
  ProtocolFixture f;
  OracleRecommender oracle(&f.test, /*inverted=*/false);
  Rng rng(10);
  TopKMetrics m = EvaluateTopK(oracle, f.train, f.test, 10, 30, rng);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.hit_rate, 1.0);
  EXPECT_DOUBLE_EQ(m.ndcg, 1.0);
  EXPECT_DOUBLE_EQ(m.mrr, 1.0);
}

TEST(Protocol, EmptyTestYieldsZeroPairs) {
  ProtocolFixture f;
  InteractionDataset empty(20, 40);
  OracleRecommender oracle(&f.test, false);
  Rng rng(11);
  CtrMetrics m = EvaluateCtr(oracle, f.train, empty, rng);
  EXPECT_EQ(m.num_pairs, 0u);
  TopKMetrics t = EvaluateTopK(oracle, f.train, empty, 10, 30, rng);
  EXPECT_EQ(t.num_users, 0u);
}

TEST(SparseProperty, DoubleTransposeIsIdentity) {
  Rng rng(12);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<std::tuple<int32_t, int32_t, float>> triplets;
    for (int i = 0; i < 40; ++i) {
      triplets.emplace_back(rng.UniformInt(7), rng.UniformInt(9),
                            static_cast<float>(rng.Normal()));
    }
    CsrMatrix m = CsrMatrix::FromTriplets(7, 9, triplets);
    CsrMatrix round_trip = m.Transpose().Transpose();
    for (size_t r = 0; r < 7; ++r) {
      for (size_t c = 0; c < 9; ++c) {
        EXPECT_FLOAT_EQ(m.At(r, c), round_trip.At(r, c));
      }
    }
  }
}

TEST(SparseProperty, MultiplicationIsAssociative) {
  Rng rng(13);
  auto random_matrix = [&rng](size_t rows, size_t cols) {
    std::vector<std::tuple<int32_t, int32_t, float>> triplets;
    for (size_t i = 0; i < rows * cols / 2; ++i) {
      triplets.emplace_back(rng.UniformInt(rows), rng.UniformInt(cols),
                            static_cast<float>(rng.Uniform()));
    }
    return CsrMatrix::FromTriplets(rows, cols, triplets);
  };
  CsrMatrix a = random_matrix(5, 6);
  CsrMatrix b = random_matrix(6, 4);
  CsrMatrix c = random_matrix(4, 7);
  CsrMatrix left = a.Multiply(b).Multiply(c);
  CsrMatrix right = a.Multiply(b.Multiply(c));
  for (size_t r = 0; r < 5; ++r) {
    for (size_t k = 0; k < 7; ++k) {
      EXPECT_NEAR(left.At(r, k), right.At(r, k), 1e-4f);
    }
  }
}

using CheckDeathTest = ::testing::Test;

TEST(CheckDeathTest, TensorShapeMismatchAborts) {
  nn::Tensor a = nn::Tensor::Zeros(2, 3);
  nn::Tensor b = nn::Tensor::Zeros(3, 3);
  EXPECT_DEATH((void)nn::Add(a, b), "KGREC_CHECK failed");
}

TEST(CheckDeathTest, ScalarValueOfMatrixAborts) {
  nn::Tensor a = nn::Tensor::Zeros(2, 2);
  EXPECT_DEATH((void)a.value(), "KGREC_CHECK failed");
}

TEST(CheckDeathTest, GatherOutOfRangeAborts) {
  nn::Tensor table = nn::Tensor::Zeros(3, 2);
  EXPECT_DEATH((void)nn::Gather(table, {5}), "KGREC_CHECK failed");
}

}  // namespace
}  // namespace kgrec
