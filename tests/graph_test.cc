// Unit and property tests for the KG/HIN engine: graph construction,
// meta-paths, PathSim, path enumeration, ripple sets and aggregators.

#include <gtest/gtest.h>

#include <set>
#include <cmath>
#include <unordered_set>

#include "graph/aggregators.h"
#include "graph/hin.h"
#include "graph/knowledge_graph.h"
#include "graph/paths.h"
#include "graph/pathsim.h"
#include "graph/ripple.h"

namespace kgrec {
namespace {

/// The Figure 1 style movie graph used across tests:
///   bob -watched-> avatar, interstellar; alice -watched-> interstellar
///   avatar/interstellar -genre-> scifi; blood_diamond -genre-> drama
///   avatar -actor-> sam; blood_diamond -actor-> leo
KnowledgeGraph MovieGraph() {
  KnowledgeGraph kg;
  const EntityId bob = kg.AddEntity("bob");
  const EntityId alice = kg.AddEntity("alice");
  const EntityId avatar = kg.AddEntity("avatar");
  const EntityId interstellar = kg.AddEntity("interstellar");
  const EntityId blood_diamond = kg.AddEntity("blood_diamond");
  const EntityId scifi = kg.AddEntity("scifi");
  const EntityId drama = kg.AddEntity("drama");
  const RelationId watched = kg.AddRelation("watched");
  const RelationId genre = kg.AddRelation("genre");
  EXPECT_TRUE(kg.AddTriple(bob, watched, avatar).ok());
  EXPECT_TRUE(kg.AddTriple(bob, watched, interstellar).ok());
  EXPECT_TRUE(kg.AddTriple(alice, watched, interstellar).ok());
  EXPECT_TRUE(kg.AddTriple(avatar, genre, scifi).ok());
  EXPECT_TRUE(kg.AddTriple(interstellar, genre, scifi).ok());
  EXPECT_TRUE(kg.AddTriple(blood_diamond, genre, drama).ok());
  kg.AddInverseRelations();
  kg.Finalize();
  return kg;
}

TEST(KnowledgeGraph, EntityAndRelationRegistration) {
  KnowledgeGraph kg;
  const EntityId a = kg.AddEntity("a");
  const EntityId a_again = kg.AddEntity("a");
  EXPECT_EQ(a, a_again);
  EXPECT_EQ(kg.num_entities(), 1u);
  EntityId found = -1;
  EXPECT_TRUE(kg.FindEntity("a", &found).ok());
  EXPECT_EQ(found, a);
  EXPECT_EQ(kg.FindEntity("missing", &found).code(), StatusCode::kNotFound);
  RelationId r = -1;
  EXPECT_EQ(kg.FindRelation("nope", &r).code(), StatusCode::kNotFound);
}

TEST(KnowledgeGraph, AddTripleValidation) {
  KnowledgeGraph kg;
  kg.AddEntity("a");
  const RelationId r = kg.AddRelation("r");
  EXPECT_EQ(kg.AddTriple(0, r, 5).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(kg.AddTriple(-1, r, 0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(kg.AddTriple(0, 7, 0).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(kg.AddTriple(0, r, 0).ok());
  kg.Finalize();
  EXPECT_EQ(kg.AddTriple(0, r, 0).code(), StatusCode::kFailedPrecondition);
}

TEST(KnowledgeGraph, InverseRelationsDoubleTriples) {
  KnowledgeGraph kg = MovieGraph();
  EXPECT_EQ(kg.num_relations(), 4u);  // watched, genre + inverses
  EXPECT_EQ(kg.num_triples(), 12u);
  RelationId genre_inv = -1;
  ASSERT_TRUE(kg.FindRelation("genre^-1", &genre_inv).ok());
  EntityId scifi = -1, avatar = -1;
  ASSERT_TRUE(kg.FindEntity("scifi", &scifi).ok());
  ASSERT_TRUE(kg.FindEntity("avatar", &avatar).ok());
  EXPECT_TRUE(kg.HasTriple(scifi, genre_inv, avatar));
}

TEST(KnowledgeGraph, OutEdgesAndDegree) {
  KnowledgeGraph kg = MovieGraph();
  EntityId bob = -1;
  ASSERT_TRUE(kg.FindEntity("bob", &bob).ok());
  EXPECT_EQ(kg.OutDegree(bob), 2u);
  const Edge* edges = kg.OutEdges(bob);
  std::set<EntityId> targets{edges[0].target, edges[1].target};
  EntityId avatar = -1, interstellar = -1;
  ASSERT_TRUE(kg.FindEntity("avatar", &avatar).ok());
  ASSERT_TRUE(kg.FindEntity("interstellar", &interstellar).ok());
  EXPECT_TRUE(targets.count(avatar));
  EXPECT_TRUE(targets.count(interstellar));
}

TEST(KnowledgeGraph, SampleNeighborsFixedSize) {
  KnowledgeGraph kg = MovieGraph();
  Rng rng(1);
  EntityId bob = -1;
  ASSERT_TRUE(kg.FindEntity("bob", &bob).ok());
  // Degree 2, request 5: padded with resamples.
  std::vector<Edge> sample = kg.SampleNeighbors(bob, 5, rng);
  EXPECT_EQ(sample.size(), 5u);
  // Degree 2, request 1: subsample without replacement.
  sample = kg.SampleNeighbors(bob, 1, rng);
  EXPECT_EQ(sample.size(), 1u);
  // Isolated entity: no edges.
  KnowledgeGraph isolated;
  isolated.AddEntity("lonely");
  isolated.Finalize();
  EXPECT_TRUE(isolated.SampleNeighbors(0, 3, rng).empty());
}

TEST(KnowledgeGraph, SampleNeighborsOutParamMatchesByValue) {
  // The buffer-reusing overload must draw the same RNG stream and produce
  // the same edges as the by-value one, including the clear-on-entry
  // semantics when the buffer already holds stale edges.
  KnowledgeGraph kg = MovieGraph();
  Rng by_value_rng(9);
  Rng out_param_rng(9);
  std::vector<Edge> buffer(3, Edge{99, 99});  // stale content
  for (EntityId e = 0; e < static_cast<EntityId>(kg.num_entities()); ++e) {
    for (size_t count : {1u, 2u, 5u}) {
      const std::vector<Edge> expected =
          kg.SampleNeighbors(e, count, by_value_rng);
      kg.SampleNeighbors(e, count, out_param_rng, &buffer);
      ASSERT_EQ(buffer.size(), expected.size());
      for (size_t i = 0; i < buffer.size(); ++i) {
        EXPECT_EQ(buffer[i].relation, expected[i].relation);
        EXPECT_EQ(buffer[i].target, expected[i].target);
      }
    }
  }
  // Both RNGs consumed the exact same number of draws.
  EXPECT_EQ(by_value_rng.NextUint64(), out_param_rng.NextUint64());
}

TEST(KnowledgeGraph, HasTripleMatchesLinearScan) {
  // HasTriple binary-searches the per-head CSR range that Finalize()
  // sorts by (relation, target); it must agree with a plain linear scan
  // for every (head, relation, tail) probe, hits and misses alike.
  KnowledgeGraph kg;
  constexpr int kEntities = 12;
  constexpr int kRelations = 3;
  for (int i = 0; i < kEntities; ++i) {
    kg.AddEntity("e" + std::to_string(i));
  }
  for (int r = 0; r < kRelations; ++r) {
    kg.AddRelation("r" + std::to_string(r));
  }
  Rng rng(17);
  for (int i = 0; i < 60; ++i) {
    const EntityId head = static_cast<EntityId>(rng.UniformInt(kEntities));
    const RelationId rel =
        static_cast<RelationId>(rng.UniformInt(kRelations));
    const EntityId tail = static_cast<EntityId>(rng.UniformInt(kEntities));
    EXPECT_TRUE(kg.AddTriple(head, rel, tail).ok());
  }
  kg.Finalize();
  for (EntityId h = 0; h < kEntities; ++h) {
    for (RelationId r = 0; r < kRelations; ++r) {
      for (EntityId t = 0; t < kEntities; ++t) {
        bool expected = false;
        const Edge* edges = kg.OutEdges(h);
        for (size_t i = 0; i < kg.OutDegree(h); ++i) {
          if (edges[i].relation == r && edges[i].target == t) {
            expected = true;
          }
        }
        EXPECT_EQ(kg.HasTriple(h, r, t), expected)
            << "(" << h << ", " << r << ", " << t << ")";
      }
    }
  }
}

TEST(KnowledgeGraph, CsrTailEntityWithZeroOutDegree) {
  // The last entity registered has no outgoing edges; the CSR offset
  // array's tail must still be well-formed (OutDegree 0, empty range)
  // and the entity before it must see its full range. This is the
  // classic off-by-one surface of a compacted offset array.
  KnowledgeGraph kg;
  const EntityId a = kg.AddEntity("a");
  const EntityId b = kg.AddEntity("b");
  const EntityId tail = kg.AddEntity("tail_no_edges");
  const RelationId r = kg.AddRelation("r");
  ASSERT_TRUE(kg.AddTriple(a, r, tail).ok());
  ASSERT_TRUE(kg.AddTriple(b, r, tail).ok());
  ASSERT_TRUE(kg.AddTriple(b, r, a).ok());
  kg.Finalize();
  EXPECT_EQ(kg.OutDegree(a), 1u);
  EXPECT_EQ(kg.OutDegree(b), 2u);
  EXPECT_EQ(kg.OutDegree(tail), 0u);
  Rng rng(7);
  EXPECT_TRUE(kg.SampleNeighbors(tail, 4, rng).empty());
  EXPECT_FALSE(kg.HasTriple(tail, r, a));
}

TEST(KnowledgeGraph, TripleCapacityGuardRejectsAddTriple) {
  // The 32-bit AdjOffset cap is enforced at insertion; the test hook
  // lowers it so the rejection path runs without 4e9 inserts.
  KnowledgeGraph kg;
  kg.AddEntity("a");
  kg.AddEntity("b");
  const RelationId r = kg.AddRelation("r");
  kg.SetTripleCapacityForTesting(2);
  EXPECT_TRUE(kg.AddTriple(0, r, 1).ok());
  EXPECT_TRUE(kg.AddTriple(1, r, 0).ok());
  EXPECT_EQ(kg.AddTriple(0, r, 0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(kg.num_triples(), 2u);  // rejected insert left no residue
}

TEST(KnowledgeGraph, TripleCapacityGuardRejectsInverseDoubling) {
  // AddInverseRelations doubles the triple count; when that would cross
  // the cap it must fail up front and leave the graph untouched.
  KnowledgeGraph kg;
  kg.AddEntity("a");
  kg.AddEntity("b");
  const RelationId r = kg.AddRelation("r");
  ASSERT_TRUE(kg.AddTriple(0, r, 1).ok());
  ASSERT_TRUE(kg.AddTriple(1, r, 0).ok());
  kg.SetTripleCapacityForTesting(3);
  EXPECT_EQ(kg.AddInverseRelations().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(kg.num_triples(), 2u);
  EXPECT_EQ(kg.num_relations(), 1u);  // no half-added inverse relations
  kg.SetTripleCapacityForTesting(4);
  EXPECT_TRUE(kg.AddInverseRelations().ok());
  EXPECT_EQ(kg.num_triples(), 4u);
  EXPECT_EQ(kg.num_relations(), 2u);
}

TEST(KnowledgeGraph, MemoryUseTotalIsSumOfEntries) {
  KnowledgeGraph kg = MovieGraph();
  MemoryVisitor visitor;
  kg.MemoryUse(visitor);
  EXPECT_FALSE(visitor.entries().empty());
  size_t sum = 0;
  for (const auto& [name, bytes] : visitor.entries()) sum += bytes;
  EXPECT_EQ(visitor.total(), sum);
  EXPECT_GT(visitor.total(), 0u);
}

TEST(KnowledgeGraph, EntityNamesInternedOnce) {
  // Re-registering a name must not grow the name pool: the bytes are
  // stored exactly once and the lookup index references them.
  KnowledgeGraph once;
  once.AddEntity("the_same_long_entity_name");
  MemoryVisitor v_once;
  once.MemoryUse(v_once);

  KnowledgeGraph many;
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(many.AddEntity("the_same_long_entity_name"), 0);
  }
  EXPECT_EQ(many.num_entities(), 1u);
  MemoryVisitor v_many;
  many.MemoryUse(v_many);
  EXPECT_EQ(v_once.total(), v_many.total());
}

TEST(KnowledgeGraph, AnonymousEntitiesSkipNameStorage) {
  KnowledgeGraph kg;
  EXPECT_EQ(kg.AddEntities(100), 0);
  EXPECT_EQ(kg.AddEntities(50), 100);
  EXPECT_EQ(kg.num_entities(), 150u);
  EXPECT_TRUE(kg.names_dropped());
  EntityId found = -1;
  EXPECT_EQ(kg.FindEntity("anything", &found).code(),
            StatusCode::kNotFound);
  const RelationId r = kg.AddRelation("r");
  ASSERT_TRUE(kg.AddTriple(0, r, 149).ok());
  kg.Finalize();
  EXPECT_TRUE(kg.HasTriple(0, r, 149));

  // The anonymous graph stores no entity-name bytes; a named graph of
  // the same shape does.
  KnowledgeGraph named;
  for (int i = 0; i < 150; ++i) named.AddEntity("e" + std::to_string(i));
  const RelationId named_r = named.AddRelation("r");
  ASSERT_TRUE(named.AddTriple(0, named_r, 149).ok());
  named.Finalize();
  MemoryVisitor v_anon, v_named;
  kg.MemoryUse(v_anon);
  named.MemoryUse(v_named);
  EXPECT_LT(v_anon.total(), v_named.total());
}

TEST(KnowledgeGraph, ReleaseTriplesKeepsCsrAdjacency) {
  KnowledgeGraph kg = MovieGraph();
  // Record the CSR view, release the triple list, and verify every
  // adjacency query still answers identically.
  std::vector<std::vector<Edge>> before;
  for (EntityId e = 0; e < static_cast<EntityId>(kg.num_entities()); ++e) {
    const Edge* edges = kg.OutEdges(e);
    before.emplace_back(edges, edges + kg.OutDegree(e));
  }
  const size_t triples_before = kg.num_triples();
  MemoryVisitor v_full;
  kg.MemoryUse(v_full);
  kg.ReleaseTriples();
  EXPECT_TRUE(kg.triples_released());
  EXPECT_EQ(kg.num_triples(), triples_before);  // the count survives
  MemoryVisitor v_released;
  kg.MemoryUse(v_released);
  EXPECT_LT(v_released.total(), v_full.total());
  for (EntityId e = 0; e < static_cast<EntityId>(kg.num_entities()); ++e) {
    ASSERT_EQ(kg.OutDegree(e), before[e].size());
    const Edge* edges = kg.OutEdges(e);
    for (size_t i = 0; i < before[e].size(); ++i) {
      EXPECT_EQ(edges[i].relation, before[e][i].relation);
      EXPECT_EQ(edges[i].target, before[e][i].target);
    }
  }
}

TEST(Hin, TypedQueriesAndRelationMatrix) {
  KnowledgeGraph kg = MovieGraph();
  // types: 0 user, 1 movie, 2 genre
  std::vector<int32_t> types{0, 0, 1, 1, 1, 2, 2};
  Hin hin(&kg, types, {"user", "movie", "genre"});
  EXPECT_EQ(hin.num_types(), 3u);
  EXPECT_EQ(hin.EntitiesOfType(0).size(), 2u);
  EXPECT_EQ(hin.EntitiesOfType(1).size(), 3u);
  RelationId genre = -1;
  ASSERT_TRUE(kg.FindRelation("genre", &genre).ok());
  CsrMatrix m = hin.RelationMatrix(genre);
  EXPECT_EQ(m.nnz(), 3u);
}

TEST(Hin, CommutingMatrixCountsPaths) {
  KnowledgeGraph kg = MovieGraph();
  std::vector<int32_t> types{0, 0, 1, 1, 1, 2, 2};
  Hin hin(&kg, types, {"user", "movie", "genre"});
  RelationId genre = -1, genre_inv = -1;
  ASSERT_TRUE(kg.FindRelation("genre", &genre).ok());
  ASSERT_TRUE(kg.FindRelation("genre^-1", &genre_inv).ok());
  MetaPath path{"shared-genre", {genre, genre_inv}};
  CsrMatrix commuting = hin.CommutingMatrix(path);
  EntityId avatar = -1, interstellar = -1, blood = -1;
  ASSERT_TRUE(kg.FindEntity("avatar", &avatar).ok());
  ASSERT_TRUE(kg.FindEntity("interstellar", &interstellar).ok());
  ASSERT_TRUE(kg.FindEntity("blood_diamond", &blood).ok());
  EXPECT_FLOAT_EQ(commuting.At(avatar, interstellar), 1.0f);
  EXPECT_FLOAT_EQ(commuting.At(avatar, avatar), 1.0f);
  EXPECT_FLOAT_EQ(commuting.At(avatar, blood), 0.0f);
  // Meta-graph: union of the genre path with itself doubles counts.
  MetaGraph mg{"double", {path, path}};
  CsrMatrix combined = hin.CommutingMatrix(mg);
  EXPECT_FLOAT_EQ(combined.At(avatar, interstellar), 2.0f);
}

TEST(PathSim, SelfSimilarityIsOneAndSymmetric) {
  KnowledgeGraph kg = MovieGraph();
  std::vector<int32_t> types{0, 0, 1, 1, 1, 2, 2};
  Hin hin(&kg, types, {"user", "movie", "genre"});
  RelationId genre = -1, genre_inv = -1;
  ASSERT_TRUE(kg.FindRelation("genre", &genre).ok());
  ASSERT_TRUE(kg.FindRelation("genre^-1", &genre_inv).ok());
  CsrMatrix sim = PathSim(hin, MetaPath{"g", {genre, genre_inv}});
  for (EntityId e = 0; e < static_cast<EntityId>(kg.num_entities()); ++e) {
    for (EntityId f = 0; f < static_cast<EntityId>(kg.num_entities()); ++f) {
      const float s = sim.At(e, f);
      EXPECT_GE(s, 0.0f);
      EXPECT_LE(s, 1.0f);
      EXPECT_FLOAT_EQ(s, sim.At(f, e));  // symmetric meta-path => symmetric
      if (e == f && s != 0.0f) EXPECT_FLOAT_EQ(s, 1.0f);
    }
  }
  EntityId avatar = -1, interstellar = -1;
  ASSERT_TRUE(kg.FindEntity("avatar", &avatar).ok());
  ASSERT_TRUE(kg.FindEntity("interstellar", &interstellar).ok());
  EXPECT_FLOAT_EQ(sim.At(avatar, interstellar), 1.0f);
}

TEST(Paths, EnumerateFindsKnownPaths) {
  KnowledgeGraph kg = MovieGraph();
  EntityId bob = -1, blood = -1;
  ASSERT_TRUE(kg.FindEntity("bob", &bob).ok());
  ASSERT_TRUE(kg.FindEntity("blood_diamond", &blood).ok());
  // bob -> blood_diamond requires 3+ hops through genre; with our graph
  // genres differ (scifi vs drama), so only longer collaborative routes
  // exist; at max length 3 there is no path.
  EXPECT_TRUE(EnumeratePaths(kg, bob, blood, 3, 10).empty());
  EntityId interstellar = -1;
  ASSERT_TRUE(kg.FindEntity("interstellar", &interstellar).ok());
  std::vector<PathInstance> paths =
      EnumeratePaths(kg, bob, interstellar, 3, 10);
  ASSERT_FALSE(paths.empty());
  for (const PathInstance& p : paths) {
    EXPECT_EQ(p.entities.front(), bob);
    EXPECT_EQ(p.entities.back(), interstellar);
    EXPECT_EQ(p.entities.size(), p.relations.size() + 1);
    // Simple path: no repeated entities.
    std::unordered_set<EntityId> seen(p.entities.begin(), p.entities.end());
    EXPECT_EQ(seen.size(), p.entities.size());
    // Every edge must exist in the graph.
    for (size_t i = 0; i < p.relations.size(); ++i) {
      EXPECT_TRUE(
          kg.HasTriple(p.entities[i], p.relations[i], p.entities[i + 1]));
    }
  }
}

TEST(Paths, SampleMetaPathInstancesMatchTemplate) {
  KnowledgeGraph kg = MovieGraph();
  Rng rng(2);
  EntityId bob = -1;
  ASSERT_TRUE(kg.FindEntity("bob", &bob).ok());
  RelationId watched = -1, genre = -1;
  ASSERT_TRUE(kg.FindRelation("watched", &watched).ok());
  ASSERT_TRUE(kg.FindRelation("genre", &genre).ok());
  std::vector<PathInstance> instances =
      SampleMetaPathInstances(kg, bob, {watched, genre}, 8, rng);
  ASSERT_FALSE(instances.empty());
  for (const PathInstance& p : instances) {
    ASSERT_EQ(p.relations.size(), 2u);
    EXPECT_EQ(p.relations[0], watched);
    EXPECT_EQ(p.relations[1], genre);
  }
}

TEST(Paths, FormatPathIsReadable) {
  KnowledgeGraph kg = MovieGraph();
  EntityId bob = -1, avatar = -1;
  ASSERT_TRUE(kg.FindEntity("bob", &bob).ok());
  ASSERT_TRUE(kg.FindEntity("avatar", &avatar).ok());
  RelationId watched = -1;
  ASSERT_TRUE(kg.FindRelation("watched", &watched).ok());
  PathInstance p;
  p.entities = {bob, avatar};
  p.relations = {watched};
  EXPECT_EQ(FormatPath(kg, p), "bob -[watched]-> avatar");
}

TEST(Ripple, HopsFollowTheRecurrence) {
  KnowledgeGraph kg = MovieGraph();
  Rng rng(3);
  EntityId avatar = -1, interstellar = -1;
  ASSERT_TRUE(kg.FindEntity("avatar", &avatar).ok());
  ASSERT_TRUE(kg.FindEntity("interstellar", &interstellar).ok());
  std::vector<EntityId> seeds{avatar, interstellar};
  std::vector<RippleHop> hops = BuildRippleSets(kg, seeds, 3, 64, rng);
  ASSERT_EQ(hops.size(), 3u);
  // Hop 1: every head must be a seed (Section 3 definition).
  std::unordered_set<EntityId> frontier(seeds.begin(), seeds.end());
  for (size_t k = 0; k < hops.size(); ++k) {
    ASSERT_FALSE(hops[k].triples.empty());
    std::unordered_set<EntityId> next;
    for (const Triple& t : hops[k].triples) {
      EXPECT_TRUE(frontier.count(t.head) > 0)
          << "hop " << k << " head not in previous relevant set";
      EXPECT_TRUE(kg.HasTriple(t.head, t.relation, t.tail));
      next.insert(t.tail);
    }
    frontier = std::move(next);
  }
  // RelevantEntities(k) == tails of hop k.
  std::vector<EntityId> e1 = RelevantEntities(hops, 1, seeds);
  for (EntityId e : e1) {
    bool found = false;
    for (const Triple& t : hops[0].triples) {
      if (t.tail == e) found = true;
    }
    EXPECT_TRUE(found);
  }
  EXPECT_EQ(RelevantEntities(hops, 0, seeds), seeds);
}

TEST(Ripple, HopSizeIsCapped) {
  KnowledgeGraph kg = MovieGraph();
  Rng rng(4);
  EntityId scifi = -1;
  ASSERT_TRUE(kg.FindEntity("scifi", &scifi).ok());
  std::vector<RippleHop> hops = BuildRippleSets(kg, {scifi}, 2, 1, rng);
  for (const RippleHop& hop : hops) {
    EXPECT_LE(hop.triples.size(), 1u);
  }
}

void ExpectSameHops(const std::vector<RippleHop>& a,
                    const std::vector<RippleHop>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t k = 0; k < a.size(); ++k) {
    ASSERT_EQ(a[k].triples.size(), b[k].triples.size());
    for (size_t i = 0; i < a[k].triples.size(); ++i) {
      EXPECT_EQ(a[k].triples[i], b[k].triples[i]);
    }
  }
}

TEST(Ripple, ParallelBuildIdenticalAcrossThreadCounts) {
  // Each unit draws from base_rng.Fork(i), so the result depends only on
  // the seed lists — never on the thread count or work order — and unit i
  // matches a direct BuildRippleSets call on the forked stream. Tight
  // max_hop_size forces actual sampling, so the RNG streams matter.
  KnowledgeGraph kg = MovieGraph();
  const Rng base_rng(23);
  std::vector<std::vector<EntityId>> seed_lists;
  for (EntityId e = 0; e < static_cast<EntityId>(kg.num_entities()); ++e) {
    seed_lists.push_back({e});
  }
  seed_lists.push_back({});  // empty seeds: num_hops empty hops
  const auto ref =
      BuildRippleSetsParallel(kg, seed_lists, 2, 1, base_rng, 1);
  ASSERT_EQ(ref.size(), seed_lists.size());
  for (size_t threads : {2u, 8u}) {
    const auto other =
        BuildRippleSetsParallel(kg, seed_lists, 2, 1, base_rng, threads);
    ASSERT_EQ(other.size(), ref.size());
    for (size_t i = 0; i < ref.size(); ++i) {
      ExpectSameHops(other[i], ref[i]);
    }
  }
  for (size_t i = 0; i < seed_lists.size(); ++i) {
    Rng unit_rng = base_rng.Fork(i);
    ExpectSameHops(ref[i],
                   BuildRippleSets(kg, seed_lists[i], 2, 1, unit_rng));
  }
  ASSERT_EQ(ref.back().size(), 2u);
  for (const RippleHop& hop : ref.back()) {
    EXPECT_TRUE(hop.triples.empty());
  }
}

class AggregatorParamTest
    : public ::testing::TestWithParam<AggregatorKind> {};

TEST_P(AggregatorParamTest, ShapeAndFiniteness) {
  Rng rng(5);
  Aggregator agg(GetParam(), 8, rng);
  nn::Tensor self = nn::Tensor::FromData(3, 8, std::vector<float>(24, 0.5f));
  nn::Tensor neigh = nn::Tensor::FromData(3, 8, std::vector<float>(24, -0.25f));
  for (bool final_layer : {false, true}) {
    nn::Tensor out = agg.Forward(self, neigh, final_layer);
    EXPECT_EQ(out.rows(), 3u);
    EXPECT_EQ(out.cols(), 8u);
    for (size_t i = 0; i < out.size(); ++i) {
      EXPECT_TRUE(std::isfinite(out.data()[i]));
      if (final_layer) {
        EXPECT_LE(out.data()[i],
                  GetParam() == AggregatorKind::kBiInteraction ? 2.0f : 1.0f);
      }
    }
  }
  EXPECT_FALSE(agg.Params().empty());
}

TEST_P(AggregatorParamTest, NameRoundTrip) {
  EXPECT_EQ(AggregatorKindFromName(AggregatorKindName(GetParam())),
            GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, AggregatorParamTest,
                         ::testing::Values(AggregatorKind::kSum,
                                           AggregatorKind::kConcat,
                                           AggregatorKind::kNeighbor,
                                           AggregatorKind::kBiInteraction));

TEST(Aggregator, NeighborKindIgnoresSelf) {
  Rng rng(6);
  Aggregator agg(AggregatorKind::kNeighbor, 4, rng);
  nn::Tensor self_a = nn::Tensor::FromData(1, 4, {1, 2, 3, 4});
  nn::Tensor self_b = nn::Tensor::FromData(1, 4, {-9, -9, -9, -9});
  nn::Tensor neigh = nn::Tensor::FromData(1, 4, {0.5f, 0.5f, 0.5f, 0.5f});
  nn::Tensor out_a = agg.Forward(self_a, neigh, false);
  nn::Tensor out_b = agg.Forward(self_b, neigh, false);
  for (size_t i = 0; i < out_a.size(); ++i) {
    EXPECT_FLOAT_EQ(out_a.data()[i], out_b.data()[i]);
  }
}

}  // namespace
}  // namespace kgrec
